package metrics

import (
	"encoding/json"

	"p2pbackup/internal/stats"
)

// This file makes a finished run's measurements serializable: the
// campaign supervisor ships them from worker process to parent over a
// JSON pipe and persists them in the checkpoint journal. Two properties
// matter:
//
//   - Completeness: every field a TSV writer or campaign summary can
//     observe round-trips, including transients (lossAccum, todayLosses)
//     so a decoded collector behaves identically to the original even if
//     someone kept recording into it.
//   - Bit-exactness: encoding/json renders float64 with the shortest
//     exact representation, and Durations rebuilds its streaming moments
//     by replaying the raw samples in recorded order, so a decoded
//     collector reports byte-identical rates, quantiles and series.

// durationsJSON is the wire form of a Durations distribution. Only the
// raw samples travel; the streaming moments are reconstructed by
// replaying them, which reproduces Welford's recurrence bit for bit.
type durationsJSON struct {
	Samples []float64 `json:"samples"`
}

// MarshalJSON encodes the distribution as its ordered raw samples.
func (d Durations) MarshalJSON() ([]byte, error) {
	return json.Marshal(durationsJSON{Samples: d.samples})
}

// UnmarshalJSON rebuilds the distribution by replaying the samples in
// order, replacing the receiver's contents.
func (d *Durations) UnmarshalJSON(data []byte) error {
	var w durationsJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*d = Durations{}
	for _, v := range w.Samples {
		d.Record(v)
	}
	return nil
}

// collectorJSON mirrors Collector field for field.
type collectorJSON struct {
	Cats         [NumCategories]Counts        `json:"cats"`
	ProfRepairs  []int64                      `json:"prof_repairs"`
	ProfLosses   []int64                      `json:"prof_losses"`
	LossSeries   [NumCategories]*stats.Series `json:"loss_series"`
	LossAccum    [NumCategories]float64       `json:"loss_accum"`
	TodayLosses  [NumCategories]int64         `json:"today_losses"`
	RepairSeries [NumCategories]*stats.Series `json:"repair_series"`
	TodayRepairs [NumCategories]int64         `json:"today_repairs"`
	Shocks       int64                        `json:"shocks"`
	ShockVictims int64                        `json:"shock_victims"`
	ShockLosses  int64                        `json:"shock_losses"`
	LastShock    int64                        `json:"last_shock"`
	TTB          Durations                    `json:"ttb"`
	TTR          Durations                    `json:"ttr"`
	RestoresFail int64                        `json:"restores_failed"`
	RedunGrows   int64                        `json:"redun_grows"`
	RedunShrinks int64                        `json:"redun_shrinks"`
	ParityAdd    int64                        `json:"parity_added"`
	ParityDrop   int64                        `json:"parity_dropped"`
	RedunSeries  *stats.Series                `json:"redun_series"`
	SampleEvery  int64                        `json:"sample_every"`
	Warmup       int64                        `json:"warmup"`
}

// MarshalJSON encodes the collector's complete state.
func (c *Collector) MarshalJSON() ([]byte, error) {
	return json.Marshal(collectorJSON{
		Cats:         c.cats,
		ProfRepairs:  c.profRepairs,
		ProfLosses:   c.profLosses,
		LossSeries:   c.lossSeries,
		LossAccum:    c.lossAccum,
		TodayLosses:  c.todayLosses,
		RepairSeries: c.repairSeries,
		TodayRepairs: c.todayRepairs,
		Shocks:       c.shocks,
		ShockVictims: c.shockVictims,
		ShockLosses:  c.shockLosses,
		LastShock:    c.lastShock,
		TTB:          c.ttb,
		TTR:          c.ttr,
		RestoresFail: c.restoresFailed,
		RedunGrows:   c.redunGrows,
		RedunShrinks: c.redunShrinks,
		ParityAdd:    c.parityAdded,
		ParityDrop:   c.parityDropped,
		RedunSeries:  c.redunSeries,
		SampleEvery:  c.sampleEvery,
		Warmup:       c.warmup,
	})
}

// UnmarshalJSON restores a collector encoded by MarshalJSON. Absent
// series decode to empty named series so the accessors stay safe on
// hand-written or truncated inputs.
func (c *Collector) UnmarshalJSON(data []byte) error {
	var w collectorJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	c.cats = w.Cats
	c.profRepairs = w.ProfRepairs
	c.profLosses = w.ProfLosses
	c.lossSeries = w.LossSeries
	c.lossAccum = w.LossAccum
	c.todayLosses = w.TodayLosses
	c.repairSeries = w.RepairSeries
	c.todayRepairs = w.TodayRepairs
	c.shocks = w.Shocks
	c.shockVictims = w.ShockVictims
	c.shockLosses = w.ShockLosses
	c.lastShock = w.LastShock
	c.ttb = w.TTB
	c.ttr = w.TTR
	c.restoresFailed = w.RestoresFail
	c.redunGrows = w.RedunGrows
	c.redunShrinks = w.RedunShrinks
	c.parityAdded = w.ParityAdd
	c.parityDropped = w.ParityDrop
	c.redunSeries = w.RedunSeries
	c.sampleEvery = w.SampleEvery
	c.warmup = w.Warmup
	for i := range c.lossSeries {
		if c.lossSeries[i] == nil {
			c.lossSeries[i] = stats.NewSeries(Category(i).String() + " cumulative losses/peer")
		}
		if c.repairSeries[i] == nil {
			c.repairSeries[i] = stats.NewSeries(Category(i).String() + " repairs/peer/day")
		}
	}
	if c.redunSeries == nil {
		c.redunSeries = stats.NewSeries("mean redundancy blocks/archive")
	}
	return nil
}

// observerTrackerJSON mirrors ObserverTracker field for field.
type observerTrackerJSON struct {
	Names  []string        `json:"names"`
	Counts []int64         `json:"counts"`
	Series []*stats.Series `json:"series"`
}

// MarshalJSON encodes the tracker's complete state.
func (t *ObserverTracker) MarshalJSON() ([]byte, error) {
	return json.Marshal(observerTrackerJSON{Names: t.names, Counts: t.counts, Series: t.series})
}

// UnmarshalJSON restores a tracker encoded by MarshalJSON.
func (t *ObserverTracker) UnmarshalJSON(data []byte) error {
	var w observerTrackerJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	t.names = w.Names
	t.counts = w.Counts
	t.series = w.Series
	if t.counts == nil {
		t.counts = make([]int64, len(t.names))
	}
	for i := range t.series {
		if t.series[i] == nil {
			t.series[i] = stats.NewSeries(t.names[i] + " cumulative repairs")
		}
	}
	return nil
}
