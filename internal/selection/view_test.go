package selection

import (
	"testing"

	"p2pbackup/internal/monitor"
	"p2pbackup/internal/rng"
)

// ageView builds a View carrying only observable age.
func ageView(age int64) View { return View{Observed: Observed{Age: age}} }

// TestNativePoliciesMatchLegacyStrategies pins the redesign's
// bit-identity contract at the unit level: for every knowledge point on
// a grid, the native Policy implementations compute exactly the floats
// the legacy Strategy implementations did (and the Adapt/AsStrategy
// round-trips preserve them).
func TestNativePoliciesMatchLegacyStrategies(t *testing.T) {
	pairs := []struct {
		spec   string
		legacy Strategy
	}{
		{"age:L=2160", AgeBased{L: 2160}},
		{"random", Random{}},
		{"availability-oracle", AvailabilityOracle{}},
		{"lifetime-oracle", LifetimeOracle{}},
		{"youngest-first", YoungestFirst{}},
	}
	infos := []PeerInfo{
		{},
		{Age: -3},
		{Age: 1, Availability: 0.33, Remaining: 7},
		{Age: 2159, Availability: 0.95, Remaining: 100000},
		{Age: 2160, Availability: 0.5, Remaining: 1},
		{Age: 999999, Availability: 1, Remaining: 0},
	}
	ctx := Context{Round: 12345}
	for _, pair := range pairs {
		pol, err := Parse(pair.spec)
		if err != nil {
			t.Fatal(err)
		}
		adapted := Adapt(pair.legacy)
		for _, a := range infos {
			for _, b := range infos {
				va, vb := inflate(a), inflate(b)
				if got, want := pol.AcceptProb(ctx, va, vb), pair.legacy.AcceptProb(a, b); got != want {
					t.Fatalf("%s: AcceptProb(%+v,%+v) = %v, legacy %v", pair.spec, a, b, got, want)
				}
				if got, want := adapted.AcceptProb(ctx, va, vb), pair.legacy.AcceptProb(a, b); got != want {
					t.Fatalf("%s: adapted AcceptProb differs", pair.spec)
				}
			}
			if got, want := pol.Score(ctx, inflate(a)), pair.legacy.Score(a); got != want {
				t.Fatalf("%s: Score(%+v) = %v, legacy %v", pair.spec, a, got, want)
			}
			if got, want := AsStrategy(pol).Score(a), pair.legacy.Score(a); got != want {
				t.Fatalf("%s: AsStrategy Score differs", pair.spec)
			}
		}
	}
}

func TestAdaptRoundTripUnwraps(t *testing.T) {
	s := AgeBased{L: 7}
	if got := AsStrategy(Adapt(s)); got != any(s) {
		t.Fatalf("AsStrategy(Adapt(s)) = %#v, want the original strategy", got)
	}
	p, err := Parse("monitored-availability:9")
	if err != nil {
		t.Fatal(err)
	}
	if got := Adapt(AsStrategy(p)); got != any(p) {
		t.Fatalf("Adapt(AsStrategy(p)) = %#v, want the original policy", got)
	}
}

func TestAcceptsAllMarkers(t *testing.T) {
	always := []string{"random", "availability-oracle", "lifetime-oracle", "youngest-first",
		"estimator:age", "estimator:pareto", "estimator:empirical", "monitored-availability"}
	for _, spec := range always {
		pol, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !AcceptsAll(pol) {
			t.Errorf("%s must declare AcceptsAll", spec)
		}
		if !AcceptsAll(AsStrategy(pol)) {
			t.Errorf("%s must keep AcceptsAll through AsStrategy", spec)
		}
	}
	age, err := Parse("age")
	if err != nil {
		t.Fatal(err)
	}
	if AcceptsAll(age) {
		t.Fatal("the age strategy is not always-accept")
	}
	for _, s := range []Strategy{Random{}, AvailabilityOracle{}, LifetimeOracle{}, YoungestFirst{}} {
		if !AcceptsAll(s) || !AcceptsAll(Adapt(s)) {
			t.Errorf("legacy %s must declare AcceptsAll (directly and adapted)", s.Name())
		}
	}
	if AcceptsAll(AgeBased{L: 5}) || AcceptsAll(Adapt(AgeBased{L: 5})) {
		t.Fatal("legacy age strategy must not declare AcceptsAll")
	}
}

// TestAgreeConsumesNoRandomnessWhenCertain is the satellite fix: the
// four always-accept baselines (and any prob==1 direction) must not
// advance the generator, while the probabilistic age path must keep its
// historical draw pattern so pre-redesign goldens stay bit-identical.
func TestAgreeConsumesNoRandomnessWhenCertain(t *testing.T) {
	elder, newborn := PeerInfo{Age: testL}, PeerInfo{Age: 0}
	for _, s := range []Strategy{Random{}, AvailabilityOracle{}, LifetimeOracle{}, YoungestFirst{}} {
		r := rng.New(42)
		before := r.State()
		if !Agree(r, s, newborn, elder) {
			t.Fatalf("%s must agree", s.Name())
		}
		if r.State() != before {
			t.Fatalf("%s consumed randomness despite always accepting", s.Name())
		}
	}
	// Both directions certain (equal ages => f = 1 both ways): no draw.
	r := rng.New(42)
	before := r.State()
	if !Agree(r, AgeBased{L: testL}, elder, elder) || r.State() != before {
		t.Fatal("certain age agreement consumed randomness")
	}
	// Probabilistic direction still draws — exactly once per direction
	// with p < 1.
	r2 := rng.New(42)
	ref := rng.New(42)
	Agree(r2, AgeBased{L: testL}, newborn, elder)
	// owner->candidate is 1 (elder older), candidate->owner is 1/L: one
	// draw total.
	ref.Float64()
	if r2.State() != ref.State() {
		t.Fatal("probabilistic agreement must draw exactly once per uncertain direction")
	}
	// AgreeCtx mirrors the same draw discipline on the Policy surface.
	pol, err := Parse("age:L=2160")
	if err != nil {
		t.Fatal(err)
	}
	r3, ref3 := rng.New(7), rng.New(7)
	AgreeCtx(r3, pol, Context{}, ageView(0), ageView(testL))
	ref3.Float64()
	if r3.State() != ref3.State() {
		t.Fatal("AgreeCtx draw pattern differs from Agree")
	}
	for _, spec := range []string{"random", "monitored-availability", "estimator:pareto"} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(9)
		before := r.State()
		if !AgreeCtx(r, p, Context{}, ageView(1), ageView(2)) || r.State() != before {
			t.Fatalf("%s: AgreeCtx consumed randomness", spec)
		}
	}
}

func TestAgreeCtxMatchesLegacyAgreeDecisions(t *testing.T) {
	pol, err := Parse("age:L=2160")
	if err != nil {
		t.Fatal(err)
	}
	legacy := AgeBased{L: 2160}
	rNew, rOld := rng.New(99), rng.New(99)
	ages := []int64{0, 1, 50, 2159, 2160, 9000}
	for i := 0; i < 2000; i++ {
		a := ages[i%len(ages)]
		b := ages[(i*7+3)%len(ages)]
		got := AgreeCtx(rNew, pol, Context{Round: int64(i)}, ageView(a), ageView(b))
		want := Agree(rOld, legacy, PeerInfo{Age: a}, PeerInfo{Age: b})
		if got != want {
			t.Fatalf("decision %d differs: ages (%d,%d) new=%v old=%v", i, a, b, got, want)
		}
	}
	if rNew.State() != rOld.State() {
		t.Fatal("rng streams diverged")
	}
}

func TestMonitoredAvailabilityScoresFromHistory(t *testing.T) {
	h := monitor.NewIntervalHistory(100)
	// Online [0,50), offline [50,100).
	if err := h.RecordTransition(0, true); err != nil {
		t.Fatal(err)
	}
	if err := h.RecordTransition(50, false); err != nil {
		t.Fatal(err)
	}
	pol, err := Parse("monitored-availability:100")
	if err != nil {
		t.Fatal(err)
	}
	v := View{Observed: Observed{Age: 100, History: h}}
	if got := pol.Score(Context{Round: 100}, v); got != 0.5 {
		t.Fatalf("score = %v, want 0.5", got)
	}
	// Shorter window sees only the offline tail.
	short := MonitoredAvailability{Window: 25}
	if got := short.Score(Context{Round: 100}, v); got != 0 {
		t.Fatalf("short-window score = %v, want 0", got)
	}
	// No history: the fallback is zero (and Uptime reports !ok).
	if got := pol.Score(Context{Round: 100}, ageView(100)); got != 0 {
		t.Fatalf("no-history score = %v, want 0", got)
	}
	if _, ok := (Observed{}).Uptime(10, 5); ok {
		t.Fatal("Uptime without history must report !ok")
	}
}

func TestEstimatorRankedScoresByEstimator(t *testing.T) {
	// The paper's equivalence holds for heavy-tailed lifetime models:
	// past each estimator's scale floor (see lifetime.Estimator),
	// estimator-backed ranking orders candidates exactly as ranking by
	// age does (ties allowed). estimator:empirical is fitted to the
	// paper population's observed lifetimes, which are BOUNDED uniform
	// mixtures — heavy-tailed only across the erratic band (one to
	// three months), beyond which conditional remaining lifetime
	// genuinely falls. The test therefore checks it there; the
	// ablation-estimator experiment measures what that divergence costs.
	cases := []struct {
		spec string
		ages []int64 // ascending, within the estimator's monotone range
	}{
		{"estimator:age", []int64{0, 1, 12, 24, 24 * 7, 720, 2159, 2160, 4000}},
		{"estimator:pareto", []int64{1, 12, 24, 24 * 7, 720, 2159, 2160, 4000}},
		{"estimator:empirical", []int64{720, 1000, 1440, 2000, 2160}},
	}
	for _, c := range cases {
		pol, err := Parse(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(c.ages); i++ {
			lo := pol.Score(Context{}, ageView(c.ages[i-1]))
			hi := pol.Score(Context{}, ageView(c.ages[i]))
			if hi < lo {
				t.Errorf("%s: score order violates age order at ages %d < %d (%v > %v)",
					c.spec, c.ages[i-1], c.ages[i], lo, hi)
			}
		}
		if neg := pol.Score(Context{}, ageView(-5)); neg != pol.Score(Context{}, ageView(0)) {
			t.Errorf("%s: negative age must clamp to 0", c.spec)
		}
	}
}
