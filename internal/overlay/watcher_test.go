package overlay

import "testing"

// recWatcher records crossing notifications in order.
type recWatcher struct {
	visible []PeerID
	alive   []PeerID
}

func (w *recWatcher) VisibleBelow(owner PeerID) { w.visible = append(w.visible, owner) }
func (w *recWatcher) AliveBelow(owner PeerID)   { w.alive = append(w.alive, owner) }

// buildFan places one block from owner 0 on each of hosts 1..n.
func buildFan(t *testing.T, n int) *Ledger {
	t.Helper()
	l := NewLedger(n+1, 8)
	for h := 1; h <= n; h++ {
		if err := l.Place(0, PeerID(h)); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestWatcherVisibleCrossingOnSetOnline(t *testing.T) {
	l := buildFan(t, 5) // owner 0: visible 5
	w := &recWatcher{}
	l.Watch(w, 4, 2) // visible threshold 4, alive threshold 2

	l.SetOnline(1, false) // visible 4: no crossing (>= 4)
	if len(w.visible) != 0 {
		t.Fatalf("crossing fired at visible=4: %v", w.visible)
	}
	l.SetOnline(2, false) // visible 3: crossed below 4
	if len(w.visible) != 1 || w.visible[0] != 0 {
		t.Fatalf("visible crossing = %v, want [0]", w.visible)
	}
	l.SetOnline(3, false) // visible 2: already below, edge-triggered once
	if len(w.visible) != 1 {
		t.Fatalf("below-to-below decrement fired: %v", w.visible)
	}
	// Recovery then a fresh crossing fires again.
	l.SetOnline(2, true)
	l.SetOnline(3, true) // visible 4
	l.SetOnline(2, false)
	if len(w.visible) != 2 {
		t.Fatalf("re-crossing did not fire: %v", w.visible)
	}
	if len(w.alive) != 0 {
		t.Fatalf("session flips must not touch alive: %v", w.alive)
	}
}

func TestWatcherAliveCrossingOnRemoveHost(t *testing.T) {
	l := buildFan(t, 3) // alive 3
	w := &recWatcher{}
	l.Watch(w, 1, 3) // alive threshold 3

	l.RemoveHost(2) // alive 2: crossed below 3
	if len(w.alive) != 1 || w.alive[0] != 0 {
		t.Fatalf("alive crossing = %v, want [0]", w.alive)
	}
	l.RemoveHost(3) // alive 1: below-to-below
	if len(w.alive) != 1 {
		t.Fatalf("below-to-below host removal fired: %v", w.alive)
	}
}

func TestWatcherCrossingsOnDropOwnerAndDropPlacement(t *testing.T) {
	l := buildFan(t, 4)
	w := &recWatcher{}
	l.Watch(w, 3, 3)

	if err := l.DropPlacementAt(0, 0); err != nil { // alive 3, visible 3: no crossings
		t.Fatal(err)
	}
	if len(w.visible) != 0 || len(w.alive) != 0 {
		t.Fatalf("unexpected crossings: vis=%v alive=%v", w.visible, w.alive)
	}
	if err := l.DropPlacementAt(0, 0); err != nil { // alive 2, visible 2: both cross
		t.Fatal(err)
	}
	if len(w.visible) != 1 || len(w.alive) != 1 {
		t.Fatalf("drop crossings: vis=%v alive=%v, want one each", w.visible, w.alive)
	}

	// Bulk owner drop from above both thresholds fires each once.
	l2 := buildFan(t, 4)
	w2 := &recWatcher{}
	l2.Watch(w2, 3, 2)
	l2.DropOwner(0)
	if len(w2.visible) != 1 || w2.visible[0] != 0 {
		t.Fatalf("DropOwner visible crossings = %v, want [0]", w2.visible)
	}
	if len(w2.alive) != 1 || w2.alive[0] != 0 {
		t.Fatalf("DropOwner alive crossings = %v, want [0]", w2.alive)
	}
	// A second drop (already at zero) fires nothing.
	l2.DropOwner(0)
	if len(w2.visible) != 1 || len(w2.alive) != 1 {
		t.Fatalf("empty DropOwner fired: vis=%v alive=%v", w2.visible, w2.alive)
	}
}

func TestWatcherNilAndUnwatched(t *testing.T) {
	// No watcher: all paths must stay silent (and not panic).
	l := buildFan(t, 3)
	l.SetOnline(1, false)
	l.RemoveHost(2)
	l.DropOwner(0)
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
