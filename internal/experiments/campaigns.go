package experiments

import (
	"context"
	"fmt"
	"sort"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/sim"
)

// This file declares the paper's evaluation campaigns as Variant lists
// and the converters that turn Runner rows back into the typed,
// plot-ready results. Adding a scenario means adding a constructor
// here — the Runner supplies execution, cancellation and streaming.

// ThresholdCampaign is the figures 1/2 sweep: one run per repair
// threshold, each with a seed derived from the base seed and the
// threshold so points are independently reproducible.
func ThresholdCampaign(cfg sim.Config, thresholds []int) (Campaign, error) {
	if len(thresholds) == 0 {
		return Campaign{}, fmt.Errorf("experiments: empty threshold list")
	}
	c := Campaign{Name: "threshold", Base: cfg}
	for _, t := range thresholds {
		c.Variants = append(c.Variants, Variant{
			Name: fmt.Sprintf("threshold %d", t),
			Seed: cfg.Seed*1000003 + uint64(t),
			Mutate: func(c *sim.Config) {
				c.RepairThreshold = t
			},
		})
	}
	return c, nil
}

// FocalCampaign is the single figures 3/4 run: threshold 148 with the
// paper's five fixed-age observers.
func FocalCampaign(cfg sim.Config) Campaign {
	return Campaign{Name: "focal", Base: cfg, Variants: []Variant{{
		Name: "focal run",
		Mutate: func(c *sim.Config) {
			c.RepairThreshold = 148
			c.Observers = sim.PaperObservers()
			if every := c.Rounds / 10; every >= 1 {
				c.ProgressEvery = every
			} else {
				c.ProgressEvery = 1
			}
		},
	}}}
}

// setStrategySpec points a variant config at a strategy spec,
// clearing every other strategy field: a base config's Policy or
// Strategy must not leak into a campaign that sweeps the strategy
// (Policy would silently win over StrategySpec in Validate).
func setStrategySpec(c *sim.Config, spec string) {
	c.Policy = nil
	c.Strategy = nil
	c.StrategySpec = spec
}

// ablationCampaign builds a labelled variant list with the ablations'
// historical index-derived seeds.
func ablationCampaign(cfg sim.Config, name string, labels []string, mutate func(c *sim.Config, i int)) Campaign {
	c := Campaign{Name: name, Base: cfg}
	for i, label := range labels {
		c.Variants = append(c.Variants, Variant{
			Name: label,
			Seed: cfg.Seed*9176501 + uint64(i),
			Mutate: func(cc *sim.Config) {
				mutate(cc, i)
			},
		})
	}
	return c
}

// StrategyCampaign compares every registered partner-selection strategy
// (A1 in DESIGN.md) on identical populations. Variants resolve through
// the spec registry (sim.Config.StrategySpec), so estimator-backed and
// monitored-availability strategies get the engine's monitoring
// substrate; specs omitting a horizon inherit the config's
// AcceptHorizon. Registration order is stable (the historical five
// first), keeping the index-derived variant seeds reproducible.
func StrategyCampaign(cfg sim.Config) Campaign {
	names := selection.Names()
	return ablationCampaign(cfg, "strategy", names, func(c *sim.Config, i int) {
		setStrategySpec(c, names[i])
	})
}

// AvailabilityCampaign compares availability models (A2).
func AvailabilityCampaign(cfg sim.Config) Campaign {
	labels := []string{"session", "bernoulli"}
	return ablationCampaign(cfg, "availability-model", labels, func(c *sim.Config, i int) {
		m, err := churn.ModelByName(labels[i])
		if err != nil {
			panic(err)
		}
		c.Avail = m
	})
}

// RepairDelayCampaign sweeps the repair-delay knob (the paper's
// future-work item).
func RepairDelayCampaign(cfg sim.Config, delays []int) Campaign {
	labels := make([]string, len(delays))
	for i, d := range delays {
		labels[i] = fmt.Sprintf("delay=%dh", d)
	}
	return ablationCampaign(cfg, "repair-delay", labels, func(c *sim.Config, i int) {
		c.RepairDelay = delays[i]
	})
}

// DiurnalCampaign sweeps the day/night amplitude of the diurnal
// availability scenario: amplitude 0 is the paper's flat availability,
// higher amplitudes concentrate the population's online time into a
// shared day and make nights a correlated availability trough.
func DiurnalCampaign(cfg sim.Config, amplitudes []float64) Campaign {
	labels := make([]string, len(amplitudes))
	for i, a := range amplitudes {
		labels[i] = fmt.Sprintf("amp=%.2f", a)
	}
	return ablationCampaign(cfg, "diurnal", labels, func(c *sim.Config, i int) {
		c.Avail = churn.DefaultDiurnalModel(amplitudes[i])
	})
}

// BlackoutCampaign compares correlated-failure scenarios against the
// i.i.d. baseline: a population-wide temporary blackout, a regional
// blackout, a regional permanent loss (the victims' blocks are gone),
// and recurring small regional ISP outages. Shock timing scales with
// the run length so every scale preset shocks mid-run.
func BlackoutCampaign(cfg sim.Config) Campaign {
	mid := cfg.Rounds / 2
	weekly := 1.0 / float64(churn.Week)
	scenarios := []struct {
		label  string
		shocks []sim.ShockSpec
	}{
		{"baseline", nil},
		{"blackout-half", []sim.ShockSpec{
			{Name: "blackout-half", Round: mid, Fraction: 0.5, Outage: 3 * churn.Day},
		}},
		{"regional-blackout", []sim.ShockSpec{
			{Name: "regional-blackout", Round: mid, Fraction: 1, Regions: 8, Outage: 3 * churn.Day},
		}},
		{"regional-loss", []sim.ShockSpec{
			{Name: "regional-loss", Round: mid, Fraction: 1, Regions: 8, Kill: true},
		}},
		{"weekly-isp-flap", []sim.ShockSpec{
			{Name: "weekly-isp-flap", Rate: weekly, Fraction: 0.5, Regions: 16, Outage: 12 * churn.Hour},
		}},
	}
	labels := make([]string, len(scenarios))
	for i, s := range scenarios {
		labels[i] = s.label
	}
	return ablationCampaign(cfg, "blackout", labels, func(c *sim.Config, i int) {
		c.Shocks = scenarios[i].shocks
	})
}

// ReplayCampaign runs every registered selection strategy over the
// same recorded churn trace — the paired comparison that synthetic
// churn cannot offer: each variant sees the identical sequence of
// joins, departures and sessions, so outcome differences are due to
// the strategy alone.
func ReplayCampaign(cfg sim.Config, trace *churn.Trace) Campaign {
	// A replayed run is bounded by its trace: beyond the last recorded
	// event there is no churn left to simulate.
	if last := trace.LastRound(); last >= 0 && last+1 < cfg.Rounds {
		cfg.Rounds = last + 1
	}
	names := selection.Names()
	c := ablationCampaign(cfg, "replay", names, func(cc *sim.Config, i int) {
		setStrategySpec(cc, names[i])
		cc.Replay = trace
	})
	return c
}

// EstimatorCampaign is the observable-knowledge ranking ablation: age
// ranking against the estimator-backed rankings (Pareto, empirical) and
// monitored-availability ranking, each under i.i.d. profile churn, a
// diurnal day/night cycle, and — when a trace is supplied — replayed
// churn (the paired comparison). The paper's claim is that ranking by
// age is equivalent to ranking by any heavy-tailed lifetime estimate;
// this campaign is the experiment that tests the claim where its
// i.i.d. heavy-tail assumptions hold and where they do not.
func EstimatorCampaign(cfg sim.Config, trace *churn.Trace) Campaign {
	strategies := []string{"age", "estimator:pareto", "estimator:empirical", "monitored-availability"}
	type variant struct {
		label  string
		mutate func(c *sim.Config)
	}
	var variants []variant
	addBlock := func(block string, apply func(c *sim.Config)) {
		for _, spec := range strategies {
			spec := spec
			variants = append(variants, variant{
				label: block + "/" + spec,
				mutate: func(c *sim.Config) {
					setStrategySpec(c, spec)
					apply(c)
				},
			})
		}
	}
	addBlock("iid", func(c *sim.Config) {})
	addBlock("diurnal", func(c *sim.Config) {
		c.Avail = churn.DefaultDiurnalModel(0.6)
	})
	if trace != nil {
		last := trace.LastRound()
		addBlock("replay", func(c *sim.Config) {
			c.Replay = trace
			if last >= 0 && last+1 < c.Rounds {
				c.Rounds = last + 1
			}
		})
	}
	labels := make([]string, len(variants))
	for i, v := range variants {
		labels[i] = v.label
	}
	return ablationCampaign(cfg, "estimator", labels, func(c *sim.Config, i int) {
		variants[i].mutate(c)
	})
}

// HorizonCampaign sweeps the acceptance horizon L (A3).
func HorizonCampaign(cfg sim.Config, horizons []int64) Campaign {
	labels := make([]string, len(horizons))
	for i, h := range horizons {
		labels[i] = fmt.Sprintf("L=%dd", h/churn.Day)
	}
	return ablationCampaign(cfg, "horizon", labels, func(c *sim.Config, i int) {
		c.AcceptHorizon = horizons[i]
		setStrategySpec(c, fmt.Sprintf("age:L=%d", horizons[i]))
	})
}

// ---------------------------------------------------------------------------
// Row converters: Runner output -> typed experiment results.

// ThresholdSweepFromRows converts a ThresholdCampaign's rows, sorted by
// threshold.
func ThresholdSweepFromRows(rows []Row) *ThresholdSweep {
	points := make([]ThresholdPoint, 0, len(rows))
	for _, row := range rows {
		p := ThresholdPoint{
			Threshold: row.Config.RepairThreshold,
			Repairs:   row.Result.Collector.TotalRepairs(),
			Losses:    row.Result.Collector.TotalLosses(),
			Deaths:    row.Result.Deaths,
		}
		for cat := metrics.Category(0); cat < metrics.NumCategories; cat++ {
			p.RepairRate[cat] = row.Result.Collector.RepairRatePer1000(cat, row.Config.CountInitialAsRepair)
			p.LossRate[cat] = row.Result.Collector.LossRatePer1000(cat)
		}
		points = append(points, p)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Threshold < points[j].Threshold })
	return &ThresholdSweep{Points: points}
}

// FocalFromRow converts a FocalCampaign's single row.
func FocalFromRow(row Row) *FocalResult {
	res := row.Result
	out := &FocalResult{
		ObserverNames: res.Observers.Names(),
		Repairs:       res.Collector.TotalRepairs(),
		Losses:        res.Collector.TotalLosses(),
		Deaths:        res.Deaths,
	}
	for i := 0; i < res.Observers.Len(); i++ {
		out.ObserverCounts = append(out.ObserverCounts, res.Observers.Count(i))
		out.ObserverSeries = append(out.ObserverSeries, res.Observers.Series(i))
	}
	for c := metrics.Category(0); c < metrics.NumCategories; c++ {
		out.LossSeries[c] = res.Collector.LossSeries(c)
	}
	return out
}

// AblationFromRows converts an ablation campaign's rows, in variant
// order.
func AblationFromRows(name string, rows []Row) *AblationResult {
	points := make([]AblationPoint, 0, len(rows))
	for _, row := range rows {
		p := AblationPoint{
			Label:       row.Name,
			Repairs:     row.Result.Collector.TotalRepairs(),
			Losses:      row.Result.Collector.TotalLosses(),
			Deaths:      row.Result.Deaths,
			Shocks:      row.Result.Collector.TotalShocks(),
			ShockLosses: row.Result.Collector.ShockAttributedLosses(),
		}
		for cat := metrics.Category(0); cat < metrics.NumCategories; cat++ {
			p.RepairRate[cat] = row.Result.Collector.RepairRatePer1000(cat, row.Config.CountInitialAsRepair)
			p.LossRate[cat] = row.Result.Collector.LossRatePer1000(cat)
			p.Uploaded += row.Result.Collector.Counts(cat).BlocksUploaded
		}
		points = append(points, p)
	}
	return &AblationResult{Name: name, Points: points}
}

// ---------------------------------------------------------------------------
// Shared campaign execution helpers.

// collectRows drains a campaign stream, forwarding every event to sink
// (when non-nil), and returns the rows ordered by variant index.
func collectRows(ctx context.Context, r Runner, c Campaign, sink func(Event)) ([]Row, error) {
	var (
		rows []Row
		err  error
	)
	for ev := range r.Stream(ctx, c) {
		if sink != nil {
			sink(ev)
		}
		switch ev.Kind {
		case EventRow:
			rows = append(rows, *ev.Row)
		case EventDone:
			err = ev.Err
		}
	}
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })
	return rows, nil
}

// progressSink adapts the legacy progress-callback style to the event
// stream: heartbeats pass through, completed rows are formatted by
// rowMsg.
func progressSink(progress func(string), rowMsg func(Row) string) func(Event) {
	if progress == nil {
		return nil
	}
	return func(ev Event) {
		switch ev.Kind {
		case EventProgress:
			progress(ev.Message)
		case EventRow:
			if rowMsg != nil {
				progress(rowMsg(*ev.Row))
			}
		}
	}
}

// doneMessage formats the historical "<campaign> <variant> done" row
// message.
func doneMessage(campaign string) func(Row) string {
	return func(row Row) string {
		return fmt.Sprintf("%s %q done: %d repairs, %d losses",
			campaign, row.Name, row.Result.Collector.TotalRepairs(), row.Result.Collector.TotalLosses())
	}
}

// thresholdDoneMessage formats the historical threshold-sweep row
// message.
func thresholdDoneMessage(row Row) string {
	return fmt.Sprintf("threshold %d done: %d repairs, %d losses",
		row.Config.RepairThreshold, row.Result.Collector.TotalRepairs(), row.Result.Collector.TotalLosses())
}
