// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is realised as GF(2)[x]/(x^8 + x^4 + x^3 + x^2 + 1), i.e. the
// irreducible polynomial 0x11D used by most Reed-Solomon deployments
// (CCSDS, QR codes, and the original Reed-Solomon paper's construction
// over a binary extension field). Multiplication and division run on
// precomputed log/exp tables; bulk slice kernels are provided for the
// erasure coder's hot loops.
//
// All operations are constant-size table lookups; the package allocates
// nothing after init.
package gf256

// Poly is the irreducible polynomial defining the field, with the x^8
// term implicit: x^8 + x^4 + x^3 + x^2 + 1.
const Poly = 0x1D

// Generator is the primitive element used to build the log/exp tables.
// 2 (i.e. the polynomial x) is primitive for 0x11D.
const Generator = 2

// Order is the multiplicative order of the field's nonzero elements.
const Order = 255

var (
	expTable [512]byte // expTable[i] = Generator^i, doubled to avoid mod 255 in Mul
	logTable [256]byte // logTable[x] = log_Generator(x); logTable[0] is unused
)

func init() {
	x := byte(1)
	for i := 0; i < Order; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// Multiply x by the generator (x <<= 1 with polynomial reduction).
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= Poly
		}
	}
	if x != 1 {
		panic("gf256: generator does not have order 255")
	}
	for i := Order; i < 512; i++ {
		expTable[i] = expTable[i-Order]
	}
}

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse,
// so Sub is the same operation.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8), identical to Add.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). It panics if b == 0.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += Order
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. It panics if a == 0.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[Order-int(logTable[a])]
}

// Exp returns Generator^n for n >= 0.
func Exp(n int) byte {
	return expTable[n%Order]
}

// Log returns log_Generator(a). It panics if a == 0.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a^n in GF(2^8) for n >= 0, with 0^0 == 1.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(int(logTable[a])*n)%Order]
}

// MulSlice sets dst[i] = c * src[i] for all i. dst and src must have the
// same length; they may alias.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	mt := mulTable(c)
	for i, s := range src {
		dst[i] = mt[s]
	}
}

// MulAddSlice sets dst[i] ^= c * src[i] for all i: a fused
// multiply-accumulate, the inner kernel of Reed-Solomon encoding.
// dst and src must have the same length and must not alias unless equal.
func MulAddSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	mt := mulTable(c)
	for i, s := range src {
		dst[i] ^= mt[s]
	}
}

// AddSlice sets dst[i] ^= src[i] for all i.
func AddSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: AddSlice length mismatch")
	}
	for i, s := range src {
		dst[i] ^= s
	}
}

// mulTables holds the full 256x256 product table (64 KiB), built at init
// so that slice kernels are safe for concurrent use.
var mulTables [256][256]byte

func init() {
	for c := 1; c < 256; c++ {
		lc := int(logTable[c])
		for x := 1; x < 256; x++ {
			mulTables[c][x] = expTable[lc+int(logTable[x])]
		}
	}
}

func mulTable(c byte) *[256]byte { return &mulTables[c] }
