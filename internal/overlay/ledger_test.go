package overlay

import (
	"errors"
	"testing"

	"p2pbackup/internal/rng"
)

func mustPlace(t *testing.T, l *Ledger, owner, host PeerID) {
	t.Helper()
	if err := l.Place(owner, host); err != nil {
		t.Fatalf("Place(%d, %d): %v", owner, host, err)
	}
}

func TestPlaceBasics(t *testing.T) {
	l := NewLedger(4, 2)
	l.SetStrict(true)
	mustPlace(t, l, 0, 1)
	mustPlace(t, l, 0, 2)
	if l.Alive(0) != 2 || l.Visible(0) != 2 {
		t.Fatalf("alive/visible = %d/%d, want 2/2", l.Alive(0), l.Visible(0))
	}
	if l.Hosted(1) != 1 || l.Hosted(2) != 1 {
		t.Fatal("host counts wrong")
	}
	if !l.HasPlacement(0, 1) || l.HasPlacement(0, 3) {
		t.Fatal("HasPlacement wrong")
	}
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceErrors(t *testing.T) {
	l := NewLedger(3, 1)
	l.SetStrict(true)
	if err := l.Place(0, 0); !errors.Is(err, ErrSelfStore) {
		t.Fatalf("self store: %v", err)
	}
	if err := l.Place(-1, 0); !errors.Is(err, ErrBadPeer) {
		t.Fatalf("bad owner: %v", err)
	}
	if err := l.Place(0, 5); !errors.Is(err, ErrBadPeer) {
		t.Fatalf("bad host: %v", err)
	}
	mustPlace(t, l, 0, 1)
	if err := l.Place(0, 1); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := l.Place(2, 1); !errors.Is(err, ErrQuotaFull) {
		t.Fatalf("quota: %v", err)
	}
	if l.FreeQuota(1) != 0 || l.FreeQuota(2) != 1 {
		t.Fatal("FreeQuota wrong")
	}
}

func TestVisibilityTracking(t *testing.T) {
	l := NewLedger(5, 10)
	mustPlace(t, l, 0, 1)
	mustPlace(t, l, 0, 2)
	mustPlace(t, l, 0, 3)
	l.SetOnline(2, false)
	if l.Visible(0) != 2 || l.Alive(0) != 3 {
		t.Fatalf("after offline: visible/alive = %d/%d, want 2/3", l.Visible(0), l.Alive(0))
	}
	l.SetOnline(2, false) // idempotent
	if l.Visible(0) != 2 {
		t.Fatal("double offline must be a no-op")
	}
	l.SetOnline(2, true)
	if l.Visible(0) != 3 {
		t.Fatal("back online must restore visibility")
	}
	if !l.Online(1) {
		t.Fatal("default state must be online")
	}
	// Placement on an offline host is alive but not visible.
	l.SetOnline(4, false)
	mustPlace(t, l, 0, 4)
	if l.Visible(0) != 3 || l.Alive(0) != 4 {
		t.Fatalf("offline placement: visible/alive = %d/%d, want 3/4", l.Visible(0), l.Alive(0))
	}
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveHost(t *testing.T) {
	l := NewLedger(4, 10)
	mustPlace(t, l, 0, 2)
	mustPlace(t, l, 1, 2)
	mustPlace(t, l, 0, 3)
	l.RemoveHost(2)
	if l.Alive(0) != 1 || l.Alive(1) != 0 {
		t.Fatalf("alive after host death = %d/%d, want 1/0", l.Alive(0), l.Alive(1))
	}
	if l.Visible(0) != 1 || l.Visible(1) != 0 {
		t.Fatal("visible after host death wrong")
	}
	if l.Hosted(2) != 0 {
		t.Fatal("dead host still hosts blocks")
	}
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Offline host death must not double-decrement visible.
	mustPlace(t, l, 0, 1)
	l.SetOnline(1, false)
	vis := l.Visible(0)
	l.RemoveHost(1)
	if l.Visible(0) != vis {
		t.Fatalf("visible changed by offline host death: %d -> %d", vis, l.Visible(0))
	}
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDropOwner(t *testing.T) {
	l := NewLedger(4, 10)
	mustPlace(t, l, 0, 1)
	mustPlace(t, l, 0, 2)
	mustPlace(t, l, 3, 1)
	l.DropOwner(0)
	if l.Alive(0) != 0 || l.Visible(0) != 0 {
		t.Fatal("owner still has placements")
	}
	if l.Hosted(1) != 1 {
		t.Fatalf("host 1 stores %d, want 1 (peer 3's block)", l.Hosted(1))
	}
	if l.Hosted(2) != 0 {
		t.Fatal("host 2 quota not freed")
	}
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRemovePeer(t *testing.T) {
	l := NewLedger(4, 10)
	mustPlace(t, l, 0, 1) // 0 owns a block on 1
	mustPlace(t, l, 1, 0) // 1 owns a block on 0
	mustPlace(t, l, 2, 0)
	l.RemovePeer(0)
	if l.Alive(0) != 0 || l.Hosted(0) != 0 {
		t.Fatal("dead peer still participates")
	}
	if l.Alive(1) != 0 || l.Alive(2) != 0 {
		t.Fatal("owners keeping blocks on dead host")
	}
	if l.Hosted(1) != 0 {
		t.Fatal("dead owner's block still hosted")
	}
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDropPlacementAt(t *testing.T) {
	l := NewLedger(5, 10)
	for _, h := range []PeerID{1, 2, 3, 4} {
		mustPlace(t, l, 0, h)
	}
	// Find and drop host 2's placement.
	idx := -1
	for i := 0; i < l.Alive(0); i++ {
		h, err := l.HostAt(0, i)
		if err != nil {
			t.Fatal(err)
		}
		if h == 2 {
			idx = i
		}
	}
	if err := l.DropPlacementAt(0, idx); err != nil {
		t.Fatal(err)
	}
	if l.HasPlacement(0, 2) {
		t.Fatal("placement still present")
	}
	if l.Alive(0) != 3 || l.Visible(0) != 3 || l.Hosted(2) != 0 {
		t.Fatal("counters wrong after drop")
	}
	if err := l.DropPlacementAt(0, 99); !errors.Is(err, ErrBadPlacement) {
		t.Fatalf("bad index: %v", err)
	}
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmeteredPlacement(t *testing.T) {
	l := NewLedger(3, 1)
	l.SetStrict(true)
	mustPlace(t, l, 0, 2) // consumes the only quota slot
	if err := l.PlaceUnmetered(1, 2); err != nil {
		t.Fatalf("unmetered placement must bypass quota: %v", err)
	}
	if l.Hosted(2) != 2 || l.MeteredHosted(2) != 1 {
		t.Fatalf("hosted/metered = %d/%d, want 2/1", l.Hosted(2), l.MeteredHosted(2))
	}
	if l.FreeQuota(2) != 0 {
		t.Fatal("unmetered block must not free quota")
	}
	// Dropping the unmetered placement must not underflow the meter.
	l.DropOwner(1)
	if l.MeteredHosted(2) != 1 || l.Hosted(2) != 1 {
		t.Fatalf("after unmetered drop: hosted/metered = %d/%d, want 1/1", l.Hosted(2), l.MeteredHosted(2))
	}
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Unmetered self-store still forbidden.
	if err := l.PlaceUnmetered(2, 2); !errors.Is(err, ErrSelfStore) {
		t.Fatalf("unmetered self store: %v", err)
	}
}

func TestHostsOwnersViews(t *testing.T) {
	l := NewLedger(4, 10)
	mustPlace(t, l, 0, 1)
	mustPlace(t, l, 0, 2)
	mustPlace(t, l, 3, 1)
	hosts := l.Hosts(0, nil)
	if len(hosts) != 2 {
		t.Fatalf("Hosts = %v", hosts)
	}
	owners := l.Owners(1, nil)
	if len(owners) != 2 {
		t.Fatalf("Owners = %v", owners)
	}
	// Buffer reuse appends.
	buf := make([]PeerID, 0, 8)
	buf = l.Hosts(0, buf)
	buf = l.Hosts(3, buf)
	if len(buf) != 3 {
		t.Fatalf("appended views = %v", buf)
	}
	if l.TotalPlacements() != 3 {
		t.Fatalf("TotalPlacements = %d", l.TotalPlacements())
	}
	if _, err := l.HostAt(0, 5); !errors.Is(err, ErrBadPlacement) {
		t.Fatal("HostAt out of range must fail")
	}
}

func TestOutOfRangeAccessorsAreSafe(t *testing.T) {
	l := NewLedger(2, 1)
	if l.Alive(-1) != 0 || l.Visible(9) != 0 || l.Hosted(-1) != 0 ||
		l.FreeQuota(9) != 0 || l.Online(9) || l.MeteredHosted(-1) != 0 {
		t.Fatal("out-of-range accessors must return zero values")
	}
	l.SetOnline(-1, false) // must not panic
	l.RemoveHost(99)
	l.DropOwner(-3)
	if l.Hosts(-1, nil) != nil || l.Owners(99, nil) != nil {
		t.Fatal("out-of-range views must be empty")
	}
}

func TestNewLedgerPanics(t *testing.T) {
	for _, c := range []struct{ n, q int }{{0, 1}, {3, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLedger(%d, %d) must panic", c.n, c.q)
				}
			}()
			NewLedger(c.n, int32(c.q))
		}()
	}
}

// TestLedgerFuzzConsistency drives the ledger with a long random
// operation sequence, checking full invariants periodically and at the
// end. This is the property test guarding the swap-and-backpatch logic.
func TestLedgerFuzzConsistency(t *testing.T) {
	const peers = 40
	r := rng.New(20240609)
	l := NewLedger(peers, 8)
	for step := 0; step < 20000; step++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3: // place
			owner := PeerID(r.Intn(peers))
			host := PeerID(r.Intn(peers))
			if owner != host && !l.HasPlacement(owner, host) {
				_ = l.Place(owner, host) // quota errors are fine
			}
		case 4: // unmetered place
			owner := PeerID(r.Intn(peers))
			host := PeerID(r.Intn(peers))
			if owner != host && !l.HasPlacement(owner, host) {
				_ = l.PlaceUnmetered(owner, host)
			}
		case 5: // toggle session
			l.SetOnline(PeerID(r.Intn(peers)), r.Bool(0.5))
		case 6: // drop one placement
			owner := PeerID(r.Intn(peers))
			if n := l.Alive(owner); n > 0 {
				if err := l.DropPlacementAt(owner, r.Intn(n)); err != nil {
					t.Fatal(err)
				}
			}
		case 7: // host death
			l.RemoveHost(PeerID(r.Intn(peers)))
		case 8: // owner reset
			l.DropOwner(PeerID(r.Intn(peers)))
		case 9: // full death
			l.RemovePeer(PeerID(r.Intn(peers)))
		}
		if step%500 == 0 {
			if err := l.CheckConsistency(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := l.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTableGenerations(t *testing.T) {
	tab := NewTable(3)
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
	ref := tab.Ref(1)
	if !ref.Valid() || !tab.Current(ref) {
		t.Fatal("fresh ref must be current")
	}
	tab.Bump(1)
	if tab.Current(ref) {
		t.Fatal("bumped ref must be stale")
	}
	if tab.Gen(1) != 1 {
		t.Fatalf("Gen = %d", tab.Gen(1))
	}
	ref2 := tab.Ref(1)
	if !tab.Current(ref2) {
		t.Fatal("re-fetched ref must be current")
	}
	if tab.Ref(99).Valid() {
		t.Fatal("out-of-range ref must be invalid")
	}
	if tab.Current(Ref{ID: 99, Gen: 0}) {
		t.Fatal("out-of-range ref must not be current")
	}
	if NoRef.Valid() {
		t.Fatal("NoRef must be invalid")
	}
	if NoRef.String() == "" || ref.String() == "" {
		t.Fatal("refs must format")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Bump out of range must panic")
			}
		}()
		tab.Bump(7)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewTable(0) must panic")
			}
		}()
		NewTable(0)
	}()
}
