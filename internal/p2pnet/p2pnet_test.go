package p2pnet

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"p2pbackup/internal/storage"
)

func allMessages() []Message {
	key := storage.IDOf([]byte("block"))
	var nonce [storage.NonceSize]byte
	copy(nonce[:], "nonce-nonce-nonce-nonce!")
	var mac [32]byte
	copy(mac[:], "mac-mac-mac-mac-mac-mac-mac-mac!")
	return []Message{
		Ping{From: "alice"},
		Pong{From: "bob"},
		StoreBlock{From: "alice", Key: key, Data: []byte{1, 2, 3}},
		StoreResult{OK: true},
		StoreResult{OK: false, Reason: "quota"},
		GetBlock{From: "carol", Key: key},
		BlockData{Key: key, Found: true, Data: []byte{9, 8}},
		BlockData{Key: key, Found: false},
		Challenge{From: "alice", Key: key, Nonce: nonce},
		ChallengeResponse{Key: key, OK: true, MAC: mac},
		StoreMaster{From: "alice", Owner: "alice", Data: []byte("master")},
		GetMaster{From: "dave", Owner: "alice"},
		MasterData{Owner: "alice", Found: true, Data: []byte("master")},
		ErrorMsg{Text: "boom"},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, m := range allMessages() {
		raw, err := Encode(m)
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		got, err := Decode(raw)
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(normalise(got), normalise(m)) {
			t.Fatalf("%v: round trip mismatch:\n got %#v\nwant %#v", m.Type(), got, m)
		}
	}
}

// normalise maps nil and empty byte slices to equality.
func normalise(m Message) Message {
	switch v := m.(type) {
	case StoreBlock:
		if len(v.Data) == 0 {
			v.Data = nil
		}
		return v
	case BlockData:
		if len(v.Data) == 0 {
			v.Data = nil
		}
		return v
	case StoreMaster:
		if len(v.Data) == 0 {
			v.Data = nil
		}
		return v
	case MasterData:
		if len(v.Data) == 0 {
			v.Data = nil
		}
		return v
	default:
		return m
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                       // type 0 invalid
		{99},                      // unknown type
		{byte(TStoreBlock), 0xFF}, // truncated
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
	// Trailing bytes rejected.
	raw, _ := Encode(Ping{From: "x"})
	if _, err := Decode(append(raw, 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	// Arbitrary bytes must never panic the decoder.
	f := func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, m := range allMessages() {
		if m.Type().String() == "" {
			t.Fatal("empty type name")
		}
	}
	if MsgType(200).String() == "" {
		t.Fatal("unknown type must format")
	}
}

func echoHandler(t *testing.T) Handler {
	t.Helper()
	return func(from string, req Message) Message {
		switch v := req.(type) {
		case Ping:
			return Pong{From: "server"}
		case StoreBlock:
			return StoreResult{OK: true}
		case GetBlock:
			return BlockData{Key: v.Key, Found: false}
		default:
			return ErrorMsg{Text: "unexpected"}
		}
	}
}

func TestInMemCallRoundTrip(t *testing.T) {
	tr := NewInMemTransport(1)
	closer, err := tr.Serve("peer-a", echoHandler(t))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tr.Call("peer-a", Ping{From: "me"})
	if err != nil {
		t.Fatal(err)
	}
	if pong, ok := resp.(Pong); !ok || pong.From != "server" {
		t.Fatalf("resp = %#v", resp)
	}
	// Unknown peer.
	if _, err := tr.Call("peer-z", Ping{}); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("err = %v", err)
	}
	// Double serve rejected.
	if _, err := tr.Serve("peer-a", echoHandler(t)); !errors.Is(err, ErrAddrInUse) {
		t.Fatal("duplicate serve accepted")
	}
	// Close unregisters.
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call("peer-a", Ping{}); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatal("closed peer still reachable")
	}
}

func TestInMemFaultInjection(t *testing.T) {
	tr := NewInMemTransport(2)
	if _, err := tr.Serve("p", echoHandler(t)); err != nil {
		t.Fatal(err)
	}
	// Partition.
	tr.SetPartitioned("p", true)
	if _, err := tr.Call("p", Ping{}); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatal("partitioned peer reachable")
	}
	tr.SetPartitioned("p", false)
	if _, err := tr.Call("p", Ping{}); err != nil {
		t.Fatal("healed partition still failing")
	}
	// Drops: with rate 1 every call fails; with 0 none do.
	tr.SetDropRate(1)
	if _, err := tr.Call("p", Ping{}); !errors.Is(err, ErrDropped) {
		t.Fatal("drop rate 1 delivered")
	}
	tr.SetDropRate(0)
	for i := 0; i < 50; i++ {
		if _, err := tr.Call("p", Ping{}); err != nil {
			t.Fatal("drop rate 0 dropped")
		}
	}
	made, failed := tr.Stats()
	if made == 0 || failed == 0 {
		t.Fatalf("stats = %d/%d", made, failed)
	}
}

func TestInMemPassesSenderName(t *testing.T) {
	tr := NewInMemTransport(3)
	var gotFrom string
	_, err := tr.Serve("srv", func(from string, req Message) Message {
		gotFrom = from
		return Pong{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call("srv", Ping{From: "alice"}); err != nil {
		t.Fatal(err)
	}
	if gotFrom != "alice" {
		t.Fatalf("from = %q", gotFrom)
	}
}

func TestTCPTransport(t *testing.T) {
	tr := NewTCPTransport()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := tr.ServeListener(ln, func(from string, req Message) Message {
		switch v := req.(type) {
		case StoreBlock:
			if from != "alice" {
				return ErrorMsg{Text: "bad from"}
			}
			return StoreResult{OK: true}
		case GetBlock:
			return BlockData{Key: v.Key, Found: true, Data: []byte("remote")}
		default:
			return Pong{From: "tcp-server"}
		}
	})
	defer srv.Close()
	addr := ln.Addr().String()

	resp, err := tr.Call(addr, Ping{From: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if pong, ok := resp.(Pong); !ok || pong.From != "tcp-server" {
		t.Fatalf("resp = %#v", resp)
	}
	key := storage.IDOf([]byte("b"))
	resp, err = tr.Call(addr, StoreBlock{From: "alice", Key: key, Data: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	if sr, ok := resp.(StoreResult); !ok || !sr.OK {
		t.Fatalf("resp = %#v", resp)
	}
	resp, err = tr.Call(addr, GetBlock{From: "alice", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if bd, ok := resp.(BlockData); !ok || string(bd.Data) != "remote" {
		t.Fatalf("resp = %#v", resp)
	}
	// Unreachable address.
	if _, err := tr.Call("127.0.0.1:1", Ping{}); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	tr := NewTCPTransport()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := tr.ServeListener(ln, func(from string, req Message) Message {
		return Pong{From: "s"}
	})
	defer srv.Close()
	addr := ln.Addr().String()
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func() {
			for i := 0; i < 10; i++ {
				if _, err := tr.Call(addr, Ping{From: "c"}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	big := StoreBlock{From: "a", Data: make([]byte, MaxMessageSize)}
	if _, err := Encode(big); !errors.Is(err, ErrMessageSize) {
		t.Fatal("oversized message encoded")
	}
}
