package backup

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"

	"p2pbackup/internal/erasure"
	"p2pbackup/internal/storage"
)

// Params fixes the archive coding shape.
type Params struct {
	// DataBlocks is k, ParityBlocks is m. The paper uses 128/128.
	DataBlocks   int
	ParityBlocks int
}

// DefaultParams returns the paper's 128+128 shape.
func DefaultParams() Params { return Params{DataBlocks: 128, ParityBlocks: 128} }

// Validate checks the shape.
func (p Params) Validate() error {
	if p.DataBlocks < 1 || p.ParityBlocks < 1 || p.DataBlocks+p.ParityBlocks > 256 {
		return fmt.Errorf("backup: invalid params k=%d m=%d", p.DataBlocks, p.ParityBlocks)
	}
	return nil
}

// Total returns n.
func (p Params) Total() int { return p.DataBlocks + p.ParityBlocks }

// ArchiveID identifies an archive by the SHA-256 of its sealed bytes.
type ArchiveID [sha256.Size]byte

// String renders the id.
func (a ArchiveID) String() string { return fmt.Sprintf("%x", a[:8]) }

// Manifest describes one encoded archive: what to fetch and how to
// verify and decode it. Manifests are metadata (the paper stores them
// with extra redundancy); they contain no secrets beyond file shape.
type Manifest struct {
	ID          ArchiveID         `json:"id"`
	SealedSize  int               `json:"sealed_size"`
	Params      Params            `json:"params"`
	BlockIDs    []storage.BlockID `json:"block_ids"` // index -> content hash
	WrappedKey  []byte            `json:"wrapped_key"`
	Description string            `json:"description,omitempty"`
}

// EncodeArchive runs the paper's backup pipeline on plaintext archive
// bytes: seal under a fresh session key, split into k shards, add m
// parity shards, hash every block. It returns the n blocks (index ->
// content) and the manifest.
func EncodeArchive(params Params, owner *Identity, plaintext []byte, description string) ([][]byte, *Manifest, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	if len(plaintext) == 0 {
		return nil, nil, ErrEmptyArchive
	}
	key, err := NewSessionKey()
	if err != nil {
		return nil, nil, err
	}
	sealed, err := Seal(key, plaintext)
	if err != nil {
		return nil, nil, err
	}
	enc, err := erasure.New(params.DataBlocks, params.ParityBlocks)
	if err != nil {
		return nil, nil, err
	}
	shards, err := enc.Split(sealed)
	if err != nil {
		return nil, nil, err
	}
	if err := enc.Encode(shards); err != nil {
		return nil, nil, err
	}
	wrapped, err := WrapKey(owner.Public(), key)
	if err != nil {
		return nil, nil, err
	}
	m := &Manifest{
		ID:          sha256.Sum256(sealed),
		SealedSize:  len(sealed),
		Params:      params,
		BlockIDs:    make([]storage.BlockID, len(shards)),
		WrappedKey:  wrapped,
		Description: description,
	}
	for i, s := range shards {
		m.BlockIDs[i] = storage.IDOf(s)
	}
	return shards, m, nil
}

// Restore errors.
var (
	ErrTooFewBlocks = errors.New("backup: not enough blocks to restore")
	ErrBlockHash    = errors.New("backup: block content does not match manifest")
	ErrManifest     = errors.New("backup: invalid manifest")
)

// DecodeArchive reverses EncodeArchive: blocks[i] must be the archive's
// i-th block or nil if unavailable; any k present blocks suffice. The
// owner's identity unwraps the session key.
func DecodeArchive(m *Manifest, owner *Identity, blocks [][]byte) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(blocks) != m.Params.Total() {
		return nil, fmt.Errorf("%w: got %d block slots, want %d", ErrManifest, len(blocks), m.Params.Total())
	}
	present := 0
	for i, b := range blocks {
		if len(b) == 0 {
			blocks[i] = nil
			continue
		}
		if storage.IDOf(b) != m.BlockIDs[i] {
			return nil, fmt.Errorf("%w: block %d", ErrBlockHash, i)
		}
		present++
	}
	if present < m.Params.DataBlocks {
		return nil, fmt.Errorf("%w: %d of %d, need %d", ErrTooFewBlocks, present, m.Params.Total(), m.Params.DataBlocks)
	}
	enc, err := erasure.New(m.Params.DataBlocks, m.Params.ParityBlocks)
	if err != nil {
		return nil, err
	}
	if err := enc.ReconstructData(blocks); err != nil {
		return nil, err
	}
	var sealedBuf []byte
	{
		// Join drops the padding using the recorded sealed size.
		w := &fixedWriter{buf: make([]byte, 0, m.SealedSize)}
		if err := enc.Join(w, blocks, m.SealedSize); err != nil {
			return nil, err
		}
		sealedBuf = w.buf
	}
	if sha256.Sum256(sealedBuf) != m.ID {
		return nil, fmt.Errorf("%w: archive hash mismatch", ErrManifest)
	}
	key, err := UnwrapKey(owner, m.WrappedKey)
	if err != nil {
		return nil, err
	}
	return Open(key, sealedBuf)
}

type fixedWriter struct{ buf []byte }

func (w *fixedWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// Validate sanity-checks a manifest.
func (m *Manifest) Validate() error {
	if err := m.Params.Validate(); err != nil {
		return err
	}
	if m.SealedSize <= 0 {
		return fmt.Errorf("%w: sealed size %d", ErrManifest, m.SealedSize)
	}
	if len(m.BlockIDs) != m.Params.Total() {
		return fmt.Errorf("%w: %d block ids for n=%d", ErrManifest, len(m.BlockIDs), m.Params.Total())
	}
	if len(m.WrappedKey) == 0 {
		return fmt.Errorf("%w: missing wrapped key", ErrManifest)
	}
	return nil
}

// Marshal serialises the manifest.
func (m *Manifest) Marshal() ([]byte, error) { return json.Marshal(m) }

// UnmarshalManifest parses a manifest and validates it.
func UnmarshalManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// MasterBlock is the restore entry point (paper section 2.2.1): the
// list of archives with their manifests and partner hints. It is the
// only thing besides the private key a user must retrieve to begin a
// restore.
type MasterBlock struct {
	Version int `json:"version"`
	// Seq increases on every publication; readers holding several
	// replicas keep the highest.
	Seq       int64       `json:"seq"`
	Manifests []*Manifest `json:"manifests"`
	// Partners maps archive index -> the peer names/addresses believed
	// to hold its blocks (a hint; restore falls back to flooding).
	Partners map[int][]string `json:"partners,omitempty"`
}

// MarshalMasterBlock serialises a master block.
func MarshalMasterBlock(mb *MasterBlock) ([]byte, error) {
	if mb.Version == 0 {
		mb.Version = 1
	}
	for _, m := range mb.Manifests {
		if err := m.Validate(); err != nil {
			return nil, err
		}
	}
	return json.Marshal(mb)
}

// UnmarshalMasterBlock parses and validates a master block.
func UnmarshalMasterBlock(data []byte) (*MasterBlock, error) {
	var mb MasterBlock
	if err := json.Unmarshal(data, &mb); err != nil {
		return nil, fmt.Errorf("%w: master block: %v", ErrManifest, err)
	}
	if mb.Version != 1 {
		return nil, fmt.Errorf("%w: unsupported master block version %d", ErrManifest, mb.Version)
	}
	for _, m := range mb.Manifests {
		if err := m.Validate(); err != nil {
			return nil, err
		}
	}
	return &mb, nil
}
