package gf256

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	id := Identity(4)
	if !id.IsIdentity() {
		t.Fatal("Identity(4) is not the identity")
	}
	if Vandermonde(3, 3).IsIdentity() {
		t.Fatal("Vandermonde(3,3) should not be identity")
	}
	if NewMatrix(2, 3).IsIdentity() {
		t.Fatal("non-square matrix cannot be identity")
	}
}

func TestVandermondeShapeAndFirstColumn(t *testing.T) {
	m := Vandermonde(5, 3)
	if m.Rows != 5 || m.Cols != 3 {
		t.Fatalf("shape = %dx%d, want 5x3", m.Rows, m.Cols)
	}
	for r := 0; r < 5; r++ {
		if m.Get(r, 0) != 1 {
			t.Errorf("column 0 of a Vandermonde matrix must be all ones, row %d = %#x", r, m.Get(r, 0))
		}
	}
	// Row r is powers of the evaluation point r.
	for r := 0; r < 5; r++ {
		for c := 0; c < 3; c++ {
			if m.Get(r, c) != Pow(byte(r), c) {
				t.Fatalf("m[%d][%d] = %#x, want %#x", r, c, m.Get(r, c), Pow(byte(r), c))
			}
		}
	}
}

func TestCauchyEverySquareSubmatrixInvertible(t *testing.T) {
	// Exhaustively check all 2x2 submatrices of a small Cauchy matrix and a
	// sample of 3x3 ones; this is the defining property.
	m := Cauchy(6, 6)
	for r1 := 0; r1 < 6; r1++ {
		for r2 := r1 + 1; r2 < 6; r2++ {
			for c1 := 0; c1 < 6; c1++ {
				for c2 := c1 + 1; c2 < 6; c2++ {
					sub := NewMatrix(2, 2)
					sub.Set(0, 0, m.Get(r1, c1))
					sub.Set(0, 1, m.Get(r1, c2))
					sub.Set(1, 0, m.Get(r2, c1))
					sub.Set(1, 1, m.Get(r2, c2))
					if _, err := sub.Invert(); err != nil {
						t.Fatalf("2x2 submatrix (%d,%d)x(%d,%d) singular", r1, r2, c1, c2)
					}
				}
			}
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		// Random matrices over a field are invertible with high
		// probability; retry until one is.
		var m *Matrix
		for {
			m = NewMatrix(n, n)
			for i := range m.Data {
				m.Data[i] = byte(rng.Intn(256))
			}
			if _, err := m.Invert(); err == nil {
				break
			}
		}
		inv, err := m.Invert()
		if err != nil {
			t.Fatal(err)
		}
		if !m.Mul(inv).IsIdentity() {
			t.Fatalf("m * m^-1 != I for n=%d", n)
		}
		if !inv.Mul(m).IsIdentity() {
			t.Fatalf("m^-1 * m != I for n=%d", n)
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(3, 3)
	// Two identical rows.
	for c := 0; c < 3; c++ {
		m.Set(0, c, byte(c+1))
		m.Set(1, c, byte(c+1))
		m.Set(2, c, byte(7*c+5))
	}
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	z := NewMatrix(2, 2)
	if _, err := z.Invert(); err != ErrSingular {
		t.Fatalf("zero matrix: expected ErrSingular, got %v", err)
	}
}

func TestVandermondeRowSubsetsInvertible(t *testing.T) {
	// Any k rows of a k-column Vandermonde matrix built from distinct
	// points form an invertible matrix.
	const n, k = 12, 5
	m := Vandermonde(n, k)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		rows := rng.Perm(n)[:k]
		sub := m.SelectRows(rows)
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("rows %v of Vandermonde(%d,%d) singular: %v", rows, n, k, err)
		}
	}
}

func TestMulAgainstMulVec(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1
		a := NewMatrix(r, k)
		for i := range a.Data {
			a.Data[i] = byte(rng.Intn(256))
		}
		vec := make([]byte, k)
		for i := range vec {
			vec[i] = byte(rng.Intn(256))
		}
		b := NewMatrix(k, c)
		copy(b.Data, vec)
		viaMul := a.Mul(b)
		viaVec := make([]byte, r)
		a.MulVec(vec, viaVec)
		for i := 0; i < r; i++ {
			if viaMul.Get(i, 0) != viaVec[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatrix(4, 4)
	for i := range m.Data {
		m.Data[i] = byte(rng.Intn(256))
	}
	if got := m.Mul(Identity(4)); string(got.Data) != string(m.Data) {
		t.Fatal("m * I != m")
	}
	if got := Identity(4).Mul(m); string(got.Data) != string(m.Data) {
		t.Fatal("I * m != m")
	}
}

func TestSubMatrixAndSelectRows(t *testing.T) {
	m := Vandermonde(6, 4)
	sub := m.SubMatrix(1, 4, 1, 3)
	if sub.Rows != 3 || sub.Cols != 2 {
		t.Fatalf("SubMatrix shape %dx%d, want 3x2", sub.Rows, sub.Cols)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 2; c++ {
			if sub.Get(r, c) != m.Get(r+1, c+1) {
				t.Fatal("SubMatrix content mismatch")
			}
		}
	}
	sel := m.SelectRows([]int{5, 0})
	if sel.Get(0, 1) != m.Get(5, 1) || sel.Get(1, 1) != m.Get(0, 1) {
		t.Fatal("SelectRows content mismatch")
	}
}

func TestSwapRows(t *testing.T) {
	m := Vandermonde(3, 3)
	want0, want2 := append([]byte(nil), m.Row(2)...), append([]byte(nil), m.Row(0)...)
	m.SwapRows(0, 2)
	if string(m.Row(0)) != string(want0) || string(m.Row(2)) != string(want2) {
		t.Fatal("SwapRows did not exchange rows")
	}
	m.SwapRows(1, 1) // no-op must not corrupt
	if string(m.Row(0)) != string(want0) {
		t.Fatal("SwapRows(i,i) corrupted matrix")
	}
}

func TestNewMatrixInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0, 3) must panic")
		}
	}()
	NewMatrix(0, 3)
}
