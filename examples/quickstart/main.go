// Quickstart: run a small lifetime-aware backup simulation and print
// the headline numbers - repair and loss rates per age category, the
// quantities the paper's evaluation revolves around.
//
// It also attaches a custom sim.Probe: the engine streams every
// protocol event (churn, repairs, losses) to pluggable observers, so
// bespoke measurement needs no engine changes.
package main

import (
	"fmt"
	"log"

	p2pbackup "p2pbackup"

	"p2pbackup/internal/metrics"
	"p2pbackup/internal/sim"
)

// uploadHistogram is a custom probe: it buckets repair events by blocks
// uploaded, a measurement the built-in collector does not keep.
type uploadHistogram struct {
	p2pbackup.BaseProbe
	sessions int64
	buckets  [5]int64 // <16, <32, <64, <128, >=128 blocks
}

func (h *uploadHistogram) OnRepair(e sim.RepairEvent) {
	switch {
	case e.Uploaded < 16:
		h.buckets[0]++
	case e.Uploaded < 32:
		h.buckets[1]++
	case e.Uploaded < 64:
		h.buckets[2]++
	case e.Uploaded < 128:
		h.buckets[3]++
	default:
		h.buckets[4]++
	}
}

func (h *uploadHistogram) OnChurn(e sim.ChurnEvent) { h.sessions++ }

func main() {
	cfg := p2pbackup.DefaultSimConfig()
	// Scale down from the paper's 25,000 peers x 5.7 years to seconds
	// of wall clock; all protocol parameters stay at paper values.
	cfg.NumPeers = 600
	cfg.Rounds = 6000 // 250 days of hourly rounds
	cfg.Observers = p2pbackup.PaperObservers()
	hist := &uploadHistogram{}
	cfg.Probes = []p2pbackup.Probe{hist}

	res, err := p2pbackup.RunSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d peers for %d rounds (%.0f days)\n",
		cfg.NumPeers, cfg.Rounds, float64(cfg.Rounds)/24)
	fmt.Printf("departures (immediately replaced): %d\n", res.Deaths)
	fmt.Printf("repairs: %d   lost archives: %d (permanent: %d)\n\n",
		res.Collector.TotalRepairs(), res.Collector.TotalLosses(), res.Collector.TotalHardLosses())

	fmt.Println("per age category (the paper's stratification):")
	for c := metrics.Category(0); c < metrics.NumCategories; c++ {
		fmt.Printf("  %-9s repairs/1000 peer-rounds: %6.3f   losses/1000: %6.4f\n",
			c, res.Collector.RepairRatePer1000(c, true), res.Collector.LossRatePer1000(c))
	}

	fmt.Println("\nfixed-age observers (figure 3):")
	for i, name := range res.Observers.Names() {
		fmt.Printf("  %-9s cumulative repairs: %d\n", name, res.Observers.Count(i))
	}

	fmt.Println("\ncustom probe (upload sizes per repair, in blocks):")
	labels := []string{"<16", "16-31", "32-63", "64-127", ">=128"}
	for i, n := range hist.buckets {
		fmt.Printf("  %-7s %d\n", labels[i], n)
	}
	fmt.Printf("churn events observed: %d\n", hist.sessions)

	fmt.Println("\nolder peers repair less: age predicts lifetime, and the")
	fmt.Println("acceptance function lets elders pick elder partners.")
}
