package costmodel

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestPaperNumbers(t *testing.T) {
	// Pins the section 2.2.4 arithmetic (T2 in DESIGN.md).
	link := DSL2009()
	code := PaperCode()
	if code.BlockBytes() != 1*MB {
		t.Fatalf("block size = %d, want 1 MB", code.BlockBytes())
	}
	if code.N() != 256 {
		t.Fatalf("n = %d, want 256", code.N())
	}
	cost, err := EstimateRepair(link, code, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Download: 128 MB at 256 kB/s = 512 s (the paper's bound).
	if cost.Download != 512*time.Second {
		t.Fatalf("download = %v, want 512s", cost.Download)
	}
	// Upload: 128 blocks x 32 s = 4096 s.
	if cost.Upload != 4096*time.Second {
		t.Fatalf("upload = %v, want 4096s", cost.Upload)
	}
	// Total approximately 77 minutes ("69 + 8 = 77 minutes").
	total := cost.Total().Minutes()
	if math.Abs(total-76.8) > 0.01 {
		t.Fatalf("total = %v min, want ~76.8 (the paper's 77)", total)
	}
	// "No more than 20 repair operations should be triggered per day."
	perDay, err := MaxRepairsPerDay(link, code, 128)
	if err != nil {
		t.Fatal(err)
	}
	if perDay < 18 || perDay >= 20 {
		t.Fatalf("repairs/day = %v, want in [18, 20) (paper rounds to 20)", perDay)
	}
}

func TestPaperArchiveBudgetExample(t *testing.T) {
	// "If we want to limit the cost to one repair per day, with 32
	// archives (4 GB of data), the repair rate should be less than one
	// per month approximatively."
	interval, err := MaxRepairIntervalPerArchive(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	days := interval.Hours() / 24
	if days != 32 {
		t.Fatalf("interval = %v days, want 32 (~one month)", days)
	}
	if _, err := MaxRepairIntervalPerArchive(0, 1); err == nil {
		t.Fatal("zero archives accepted")
	}
	if _, err := MaxRepairIntervalPerArchive(1, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestUploadDominates(t *testing.T) {
	// The paper's observation: upload of regenerated blocks dominates
	// the repair on asymmetric links for any d > 16 (512 s / 32 s).
	link := DSL2009()
	code := PaperCode()
	for _, d := range []int{17, 64, 128, 256} {
		cost, err := EstimateRepair(link, code, d)
		if err != nil {
			t.Fatal(err)
		}
		if cost.Upload <= cost.Download {
			t.Fatalf("d=%d: upload %v <= download %v", d, cost.Upload, cost.Download)
		}
	}
	// And download dominates for tiny d.
	cost, _ := EstimateRepair(link, code, 1)
	if cost.Upload >= cost.Download {
		t.Fatal("single-block repair must be download-bound")
	}
}

func TestFTTHFourTimesFaster(t *testing.T) {
	slow, _ := EstimateRepair(DSL2009(), PaperCode(), 128)
	fast, _ := EstimateRepair(FTTH2009(), PaperCode(), 128)
	ratio := float64(slow.Total()) / float64(fast.Total())
	if math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("FTTH speedup = %v, want 4x", ratio)
	}
}

func TestEstimateRepairValidation(t *testing.T) {
	code := PaperCode()
	if _, err := EstimateRepair(Link{}, code, 1); !errors.Is(err, ErrBadLink) {
		t.Fatal("zero link accepted")
	}
	if _, err := EstimateRepair(DSL2009(), Code{ArchiveBytes: 0, K: 1}, 1); err == nil {
		t.Fatal("zero archive accepted")
	}
	if _, err := EstimateRepair(DSL2009(), Code{ArchiveBytes: 1, K: 0}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := EstimateRepair(DSL2009(), code, -1); err == nil {
		t.Fatal("negative d accepted")
	}
	if _, err := EstimateRepair(DSL2009(), code, 257); err == nil {
		t.Fatal("d > n accepted")
	}
	if _, err := EstimateRepair(DSL2009(), code, 0); err != nil {
		t.Fatal("d = 0 (pure decode check) must be allowed")
	}
}

func TestBlockBytesRoundsUp(t *testing.T) {
	c := Code{ArchiveBytes: 10, K: 3, M: 1}
	if c.BlockBytes() != 4 {
		t.Fatalf("BlockBytes = %d, want ceil(10/3) = 4", c.BlockBytes())
	}
}

func TestPaperTable(t *testing.T) {
	rows, err := PaperTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	if rows[0].Cost.Total() <= rows[1].Cost.Total() {
		t.Fatal("worst case must cost more than single block")
	}
	if rows[2].Cost.Total() >= rows[0].Cost.Total() {
		t.Fatal("FTTH must beat DSL")
	}
	for _, r := range rows {
		if r.RepairsPerDay <= 0 || r.Label == "" {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestParityUploadCostAgreesWithEstimateRepair(t *testing.T) {
	code := PaperCode()
	for _, link := range []Link{DSL2009(), FTTH2009()} {
		for _, delta := range []int{0, 1, 20, 128, code.N()} {
			got, err := ParityUploadCost(code, delta, link)
			if err != nil {
				t.Fatalf("ParityUploadCost(delta=%d): %v", delta, err)
			}
			rc, err := EstimateRepair(link, code, delta)
			if err != nil {
				t.Fatalf("EstimateRepair(d=%d): %v", delta, err)
			}
			if got != rc.Upload {
				t.Fatalf("delta=%d link=%+v: ParityUploadCost=%v, EstimateRepair.Upload=%v",
					delta, link, got, rc.Upload)
			}
		}
	}
}

func TestParityUploadCostErrors(t *testing.T) {
	code := PaperCode()
	if _, err := ParityUploadCost(code, -1, DSL2009()); err == nil {
		t.Fatal("negative delta accepted")
	}
	if _, err := ParityUploadCost(code, code.N()+1, DSL2009()); err == nil {
		t.Fatal("delta > n accepted")
	}
	if _, err := ParityUploadCost(code, 1, Link{UploadBps: 0, DownloadBps: 1}); err == nil {
		t.Fatal("zero upload rate accepted")
	}
	if _, err := ParityUploadCost(Code{ArchiveBytes: 0, K: 1}, 1, DSL2009()); err == nil {
		t.Fatal("invalid code accepted")
	}
}
