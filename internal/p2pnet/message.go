// Package p2pnet is the message layer between backup peers: a compact
// binary wire format, a synchronous request/response transport
// abstraction, an in-process implementation with fault injection for
// tests and simulations, and a TCP implementation with length-prefixed
// frames for real deployments.
package p2pnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"p2pbackup/internal/storage"
)

// MsgType enumerates wire messages.
type MsgType uint8

// Message types. Every request type has a response counterpart.
const (
	TPing MsgType = iota + 1
	TPong
	TStoreBlock
	TStoreResult
	TGetBlock
	TBlockData
	TChallenge
	TChallengeResponse
	TStoreMaster
	TGetMaster
	TMasterData
	TError
)

var msgTypeNames = map[MsgType]string{
	TPing: "ping", TPong: "pong",
	TStoreBlock: "store-block", TStoreResult: "store-result",
	TGetBlock: "get-block", TBlockData: "block-data",
	TChallenge: "challenge", TChallengeResponse: "challenge-response",
	TStoreMaster: "store-master", TGetMaster: "get-master", TMasterData: "master-data",
	TError: "error",
}

func (t MsgType) String() string {
	if n, ok := msgTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is any wire message.
type Message interface {
	Type() MsgType
}

// Ping checks liveness; Pong echoes the peer's name.
type Ping struct{ From string }

// Pong answers a Ping.
type Pong struct{ From string }

// StoreBlock asks the receiver to hold a block.
type StoreBlock struct {
	From string
	Key  storage.BlockID
	Data []byte
}

// StoreResult acknowledges a StoreBlock.
type StoreResult struct {
	OK     bool
	Reason string
}

// GetBlock requests a block's content.
type GetBlock struct {
	From string
	Key  storage.BlockID
}

// BlockData answers GetBlock. Found is false when the block is absent.
type BlockData struct {
	Key   storage.BlockID
	Found bool
	Data  []byte
}

// Challenge audits a held block (proof of storage).
type Challenge struct {
	From  string
	Key   storage.BlockID
	Nonce [storage.NonceSize]byte
}

// ChallengeResponse carries the HMAC answer; OK is false when the
// holder no longer has the block.
type ChallengeResponse struct {
	Key storage.BlockID
	OK  bool
	MAC [32]byte
}

// StoreMaster replicates an owner's (encrypted) master block.
type StoreMaster struct {
	From  string
	Owner string
	Data  []byte
}

// GetMaster retrieves a replicated master block by owner name.
type GetMaster struct {
	From  string
	Owner string
}

// MasterData answers GetMaster.
type MasterData struct {
	Owner string
	Found bool
	Data  []byte
}

// ErrorMsg reports a remote failure.
type ErrorMsg struct{ Text string }

// Type implementations.
func (Ping) Type() MsgType              { return TPing }
func (Pong) Type() MsgType              { return TPong }
func (StoreBlock) Type() MsgType        { return TStoreBlock }
func (StoreResult) Type() MsgType       { return TStoreResult }
func (GetBlock) Type() MsgType          { return TGetBlock }
func (BlockData) Type() MsgType         { return TBlockData }
func (Challenge) Type() MsgType         { return TChallenge }
func (ChallengeResponse) Type() MsgType { return TChallengeResponse }
func (StoreMaster) Type() MsgType       { return TStoreMaster }
func (GetMaster) Type() MsgType         { return TGetMaster }
func (MasterData) Type() MsgType        { return TMasterData }
func (ErrorMsg) Type() MsgType          { return TError }

// ---------------------------------------------------------------------------
// Codec

// MaxMessageSize bounds a decoded message (16 MiB covers a 1 MiB block
// with generous headroom).
const MaxMessageSize = 16 << 20

// Codec errors.
var (
	ErrBadMessage  = errors.New("p2pnet: malformed message")
	ErrMessageSize = errors.New("p2pnet: message too large")
)

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)  { e.buf = append(e.buf, v) }
func (e *encoder) bool(v bool) { e.u8(map[bool]uint8{false: 0, true: 1}[v]) }
func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}
func (e *encoder) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) str(s string) { e.bytes([]byte(s)) }
func (e *encoder) fixed(b []byte) {
	e.buf = append(e.buf, b...)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrBadMessage
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) bool() bool { return d.u8() == 1 }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > MaxMessageSize || n > uint64(len(d.buf)) || n > math.MaxInt32 {
		d.fail()
		return nil
	}
	out := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) str() string { return string(d.bytes()) }

func (d *decoder) fixed(n int) []byte {
	if d.err != nil || len(d.buf) < n {
		d.fail()
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

// Encode serialises a message (type byte + fields).
func Encode(m Message) ([]byte, error) {
	e := &encoder{buf: make([]byte, 0, 64)}
	e.u8(uint8(m.Type()))
	switch v := m.(type) {
	case Ping:
		e.str(v.From)
	case Pong:
		e.str(v.From)
	case StoreBlock:
		e.str(v.From)
		e.fixed(v.Key[:])
		e.bytes(v.Data)
	case StoreResult:
		e.bool(v.OK)
		e.str(v.Reason)
	case GetBlock:
		e.str(v.From)
		e.fixed(v.Key[:])
	case BlockData:
		e.fixed(v.Key[:])
		e.bool(v.Found)
		e.bytes(v.Data)
	case Challenge:
		e.str(v.From)
		e.fixed(v.Key[:])
		e.fixed(v.Nonce[:])
	case ChallengeResponse:
		e.fixed(v.Key[:])
		e.bool(v.OK)
		e.fixed(v.MAC[:])
	case StoreMaster:
		e.str(v.From)
		e.str(v.Owner)
		e.bytes(v.Data)
	case GetMaster:
		e.str(v.From)
		e.str(v.Owner)
	case MasterData:
		e.str(v.Owner)
		e.bool(v.Found)
		e.bytes(v.Data)
	case ErrorMsg:
		e.str(v.Text)
	default:
		return nil, fmt.Errorf("p2pnet: cannot encode %T", m)
	}
	if len(e.buf) > MaxMessageSize {
		return nil, ErrMessageSize
	}
	return e.buf, nil
}

// Decode parses a serialised message.
func Decode(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, ErrBadMessage
	}
	if len(data) > MaxMessageSize {
		return nil, ErrMessageSize
	}
	d := &decoder{buf: data[1:]}
	var m Message
	switch MsgType(data[0]) {
	case TPing:
		m = Ping{From: d.str()}
	case TPong:
		m = Pong{From: d.str()}
	case TStoreBlock:
		v := StoreBlock{From: d.str()}
		copy(v.Key[:], d.fixed(len(v.Key)))
		v.Data = d.bytes()
		m = v
	case TStoreResult:
		m = StoreResult{OK: d.bool(), Reason: d.str()}
	case TGetBlock:
		v := GetBlock{From: d.str()}
		copy(v.Key[:], d.fixed(len(v.Key)))
		m = v
	case TBlockData:
		v := BlockData{}
		copy(v.Key[:], d.fixed(len(v.Key)))
		v.Found = d.bool()
		v.Data = d.bytes()
		m = v
	case TChallenge:
		v := Challenge{From: d.str()}
		copy(v.Key[:], d.fixed(len(v.Key)))
		copy(v.Nonce[:], d.fixed(len(v.Nonce)))
		m = v
	case TChallengeResponse:
		v := ChallengeResponse{}
		copy(v.Key[:], d.fixed(len(v.Key)))
		v.OK = d.bool()
		copy(v.MAC[:], d.fixed(len(v.MAC)))
		m = v
	case TStoreMaster:
		m = StoreMaster{From: d.str(), Owner: d.str(), Data: d.bytes()}
	case TGetMaster:
		m = GetMaster{From: d.str(), Owner: d.str()}
	case TMasterData:
		m = MasterData{Owner: d.str(), Found: d.bool(), Data: d.bytes()}
	case TError:
		m = ErrorMsg{Text: d.str()}
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadMessage, data[0])
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(d.buf))
	}
	return m, nil
}
