package storage

import (
	"errors"
	"testing"
)

func TestProofRoundTrip(t *testing.T) {
	block := []byte("the block the partner must really hold")
	cs, err := GenerateChallenges(block, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 5 {
		t.Fatalf("got %d challenges", len(cs))
	}
	for i, c := range cs {
		resp := Respond(block, c.Nonce)
		if !c.Verify(resp) {
			t.Fatalf("challenge %d: honest response rejected", i)
		}
	}
	// Nonces must be distinct (single-use audits).
	seen := map[[NonceSize]byte]bool{}
	for _, c := range cs {
		if seen[c.Nonce] {
			t.Fatal("duplicate nonce")
		}
		seen[c.Nonce] = true
	}
}

func TestProofDetectsWrongContent(t *testing.T) {
	block := []byte("original content")
	cs, err := GenerateChallenges(block, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A holder with modified content cannot answer.
	tampered := append([]byte(nil), block...)
	tampered[0] ^= 1
	if cs[0].Verify(Respond(tampered, cs[0].Nonce)) {
		t.Fatal("tampered block passed audit")
	}
	// A holder with no content cannot answer either.
	if cs[0].Verify(Respond(nil, cs[0].Nonce)) {
		t.Fatal("empty response passed audit")
	}
	// Replaying the answer for a different nonce fails.
	cs2, _ := GenerateChallenges(block, 1)
	if cs2[0].Verify(Respond(block, cs[0].Nonce)) {
		t.Fatal("cross-nonce replay passed audit")
	}
}

func TestGenerateChallengesValidation(t *testing.T) {
	if _, err := GenerateChallenges([]byte("x"), 0); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := GenerateChallenges(nil, 1); err == nil {
		t.Fatal("empty block accepted")
	}
}

func TestAuditor(t *testing.T) {
	block := []byte("audited block")
	id := IDOf(block)
	cs, err := GenerateChallenges(block, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAuditor()
	a.Add(id, cs)
	if a.Remaining(id) != 3 {
		t.Fatalf("Remaining = %d", a.Remaining(id))
	}
	// Pop all three; each verifies the honest holder.
	for i := 0; i < 3; i++ {
		c, err := a.Next(id)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Verify(Respond(block, c.Nonce)) {
			t.Fatal("auditor challenge failed against honest holder")
		}
	}
	if _, err := a.Next(id); !errors.Is(err, ErrNoChallenges) {
		t.Fatalf("exhausted auditor: err = %v", err)
	}
	// Forget clears state.
	a.Add(id, cs[:1])
	a.Forget(id)
	if a.Remaining(id) != 0 {
		t.Fatal("Forget left challenges")
	}
}
