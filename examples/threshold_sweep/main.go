// threshold_sweep: a miniature of the paper's figures 1 and 2 - how
// the repair threshold k' trades repair traffic against archive loss,
// stratified by peer age category.
package main

import (
	"fmt"
	"log"
	"os"

	"p2pbackup/internal/experiments"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.NumPeers = 600
	cfg.Rounds = 8000
	thresholds := []int{132, 140, 148, 156, 164, 172, 180}

	fmt.Fprintf(os.Stderr, "sweeping %d thresholds over %d peers x %d rounds...\n",
		len(thresholds), cfg.NumPeers, cfg.Rounds)
	sweep, err := experiments.RunThresholdSweep(cfg, thresholds, 0, func(msg string) {
		fmt.Fprintln(os.Stderr, "  "+msg)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfigure 1 (repairs per 1000 peer-rounds):")
	fmt.Printf("%9s %10s %10s %10s %10s\n", "threshold", "newcomer", "young", "old", "elder")
	for _, p := range sweep.Points {
		fmt.Printf("%9d %10.3f %10.3f %10.3f %10.3f\n", p.Threshold,
			p.RepairRate[metrics.Newcomer], p.RepairRate[metrics.Young],
			p.RepairRate[metrics.Old], p.RepairRate[metrics.Elder])
	}

	fmt.Println("\nfigure 2 (lost archives per 1000 peer-rounds):")
	fmt.Printf("%9s %10s %10s %10s %10s\n", "threshold", "newcomer", "young", "old", "elder")
	for _, p := range sweep.Points {
		fmt.Printf("%9d %10.4f %10.4f %10.4f %10.4f\n", p.Threshold,
			p.LossRate[metrics.Newcomer], p.LossRate[metrics.Young],
			p.LossRate[metrics.Old], p.LossRate[metrics.Elder])
	}

	fmt.Println("\nexpect: repairs rise with the threshold (newcomers worst);")
	fmt.Println("losses concentrate on newcomers and vanish for older peers.")
}
