// Package p2pbackup is a peer-to-peer backup system with
// lifetime-aware partner selection, reproducing Bernard & Le Fessant,
// "Optimizing peer-to-peer backup using lifetime estimations"
// (DaMaP/EDBT workshop 2009).
//
// The library has two halves:
//
//   - A live backup system: archives are encrypted, Reed-Solomon coded
//     (any k of n blocks restore), spread over partner peers chosen by
//     the paper's age-based acceptance rule, monitored, audited with
//     proofs of storage, and repaired when too few blocks are visible.
//     See NewNode, NewDirectory and the examples/ directory.
//
//   - A discrete-event simulator reproducing the paper's evaluation:
//     25,000-peer populations with the paper's four behaviour profiles,
//     repair-threshold sweeps (figures 1-2), fixed-age observers
//     (figure 3) and cumulative loss tracking (figure 4). See
//     DefaultSimConfig, NewSimulation and RunExperiment.
//
// This root package is a facade: it re-exports the stable surface of
// the internal packages so downstream code has one import.
package p2pbackup

import (
	"context"

	"p2pbackup/internal/backup"
	"p2pbackup/internal/churn"
	"p2pbackup/internal/costmodel"
	"p2pbackup/internal/erasure"
	"p2pbackup/internal/experiments"
	"p2pbackup/internal/lifetime"
	"p2pbackup/internal/node"
	"p2pbackup/internal/p2pnet"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/sim"
	"p2pbackup/internal/storage"
)

// ---------------------------------------------------------------------------
// Simulation (the paper's evaluation)

// SimConfig parameterises a simulation run; see DefaultSimConfig for
// the paper's parameters.
type SimConfig = sim.Config

// SimResult is a finished run's metrics.
type SimResult = sim.Result

// Simulation is a configured run.
type Simulation = sim.Simulation

// ObserverSpec declares a fixed-age observer peer (figure 3).
type ObserverSpec = sim.ObserverSpec

// DefaultSimConfig returns the paper's full-scale parameters (25,000
// peers, 50,000 rounds, n=256, k=128, threshold 148, quota 384).
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// PaperObservers returns the paper's five observers (3 months, 1
// month, 1 week, 1 day, 1 hour).
func PaperObservers() []ObserverSpec { return sim.PaperObservers() }

// Probe observes simulation events (churn, repairs, losses, round
// boundaries); attach implementations via SimConfig.Probes. Embed
// BaseProbe and override only the hooks of interest.
type Probe = sim.Probe

// BaseProbe is a no-op Probe for embedding.
type BaseProbe = sim.BaseProbe

// NewSimulation validates the config and builds a run.
func NewSimulation(cfg SimConfig) (*Simulation, error) { return sim.New(cfg) }

// RunSimulation is the one-call variant of NewSimulation().Run().
func RunSimulation(cfg SimConfig) (*SimResult, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// ---------------------------------------------------------------------------
// Campaigns (batches of simulation runs)

// Campaign is a declarative batch of simulation runs: a base config
// plus a list of variants.
type Campaign = experiments.Campaign

// Variant is one named point of a campaign.
type Variant = experiments.Variant

// Runner executes campaigns over a bounded worker pool with context
// cancellation and a typed event stream.
type Runner = experiments.Runner

// CampaignEvent is one element of a Runner's event stream.
type CampaignEvent = experiments.Event

// CampaignRow is one completed variant run.
type CampaignRow = experiments.Row

// ThresholdCampaign is the paper's figures 1/2 sweep as a campaign.
func ThresholdCampaign(cfg SimConfig, thresholds []int) (Campaign, error) {
	return experiments.ThresholdCampaign(cfg, thresholds)
}

// FocalCampaign is the paper's figures 3/4 run as a campaign.
func FocalCampaign(cfg SimConfig) Campaign { return experiments.FocalCampaign(cfg) }

// StrategyCampaign compares every partner-selection strategy.
func StrategyCampaign(cfg SimConfig) Campaign { return experiments.StrategyCampaign(cfg) }

// ExperimentOptions configures RunExperiment.
type ExperimentOptions = experiments.Options

// ExperimentSummary reports an experiment's outputs.
type ExperimentSummary = experiments.Summary

// RunExperiment regenerates a paper table or figure by id: "fig1",
// "fig2", "fig3", "fig4", "costmodel", "ablation-strategy",
// "ablation-availability", "ablation-horizon", "ablation-delay",
// "ablation-estimator", the scenario campaigns "diurnal", "blackout"
// and "replay" (needs Options.TracePath), or "all".
//
// Deprecated: wrapper over RunExperimentContext with a background
// context; it cannot be cancelled.
func RunExperiment(name string, opts ExperimentOptions) ([]ExperimentSummary, error) {
	return experiments.Run(name, opts)
}

// RunExperimentContext is RunExperiment with cancellation: the campaign
// stops cleanly, including in-flight simulations, when ctx is done.
func RunExperimentContext(ctx context.Context, name string, opts ExperimentOptions) ([]ExperimentSummary, error) {
	return experiments.RunCtx(ctx, name, opts)
}

// ExperimentNames lists the runnable experiment ids.
func ExperimentNames() []string { return experiments.Names() }

// PaperProfiles returns the paper's four behaviour profiles (durable,
// stable, unstable, erratic).
func PaperProfiles() *churn.ProfileSet { return churn.PaperProfiles() }

// ---------------------------------------------------------------------------
// Scenarios (workloads beyond the paper's i.i.d. churn)

// ShockSpec schedules a correlated-failure event (power outage, ISP
// failure, regional loss); attach via SimConfig.Shocks.
type ShockSpec = sim.ShockSpec

// ShockEvent reports a shock firing to probes.
type ShockEvent = sim.ShockEvent

// AvailabilityModel generates peers' online/offline sessions; set
// SimConfig.Avail.
type AvailabilityModel = churn.AvailabilityModel

// AvailabilityModelByName resolves "session", "bernoulli",
// "always-online", or "diurnal[:AMP]".
func AvailabilityModelByName(name string) (AvailabilityModel, error) {
	return churn.ModelByName(name)
}

// DiurnalAvailability returns a day/night availability cycle of the
// given amplitude (0 = the paper's flat model, 1 = full swing) over the
// default session model.
func DiurnalAvailability(amplitude float64) AvailabilityModel {
	return churn.DefaultDiurnalModel(amplitude)
}

// ChurnTrace is a recorded churn event log: capture one with
// SimConfig.RecordTrace, replay it with SimConfig.Replay.
type ChurnTrace = churn.Trace

// ReadTraceFile loads a churn trace (CSV or JSONL, by extension).
func ReadTraceFile(path string) (*ChurnTrace, error) { return churn.ReadTraceFile(path) }

// WriteTraceFile stores a churn trace (CSV or JSONL, by extension).
func WriteTraceFile(path string, t *ChurnTrace) error { return churn.WriteTraceFile(path, t) }

// DiurnalCampaign sweeps the day/night amplitude.
func DiurnalCampaign(cfg SimConfig, amplitudes []float64) Campaign {
	return experiments.DiurnalCampaign(cfg, amplitudes)
}

// BlackoutCampaign compares correlated-failure scenarios against the
// i.i.d. baseline.
func BlackoutCampaign(cfg SimConfig) Campaign { return experiments.BlackoutCampaign(cfg) }

// ReplayCampaign runs every selection strategy over one recorded churn
// trace (paired comparison: identical churn, different strategies).
func ReplayCampaign(cfg SimConfig, trace *ChurnTrace) Campaign {
	return experiments.ReplayCampaign(cfg, trace)
}

// EstimatorCampaign compares age vs estimator-backed vs
// monitored-availability ranking under i.i.d., diurnal and (when trace
// is non-nil) replayed churn.
func EstimatorCampaign(cfg SimConfig, trace *ChurnTrace) Campaign {
	return experiments.EstimatorCampaign(cfg, trace)
}

// ---------------------------------------------------------------------------
// Erasure coding

// Encoder is a systematic Reed-Solomon codec over GF(2^8).
type Encoder = erasure.Encoder

// NewEncoder returns a codec for k data and m parity shards: any k of
// the k+m shards reconstruct the data. The paper uses k = m = 128.
func NewEncoder(k, m int) (*Encoder, error) { return erasure.New(k, m) }

// ---------------------------------------------------------------------------
// Lifetime estimation

// LifetimeEstimator predicts expected remaining lifetime from age.
type LifetimeEstimator = lifetime.Estimator

// AgeRank is the paper's non-parametric estimator: rank peers by age,
// capped at the stability horizon.
type AgeRank = lifetime.AgeRank

// ParetoModel is a fitted Pareto lifetime model.
type ParetoModel = lifetime.ParetoModel

// FitParetoLifetimes fits a Pareto model to observed complete
// lifetimes by maximum likelihood.
func FitParetoLifetimes(samples []float64) (ParetoModel, error) {
	return lifetime.FitPareto(samples)
}

// EmpiricalLifetimeModel is a distribution-free remaining-lifetime
// estimator backed by observed complete lifetimes.
type EmpiricalLifetimeModel = lifetime.EmpiricalModel

// NewEmpiricalLifetimeModel builds the distribution-free estimator from
// observed complete lifetimes.
func NewEmpiricalLifetimeModel(lifetimes []float64) (*EmpiricalLifetimeModel, error) {
	return lifetime.NewEmpiricalModel(lifetimes)
}

// ---------------------------------------------------------------------------
// Selection strategies

// Policy decides partnerships and ranks candidates on the
// observable/oracle knowledge split; set SimConfig.Policy or resolve
// one from a spec string with ParseStrategy.
type Policy = selection.Policy

// View is everything a Policy may be told about a peer, split into
// Observed (age, monitored availability history) and Oracle (ground
// truth for the oracle baselines).
type View = selection.View

// SelectionContext carries the current round into Policy calls.
type SelectionContext = selection.Context

// StrategyBuilder constructs a Policy from parsed spec parameters; use
// with RegisterStrategy.
type StrategyBuilder = selection.Builder

// EstimatorRanked ranks candidates by a lifetime estimator applied to
// their observed age (the "estimator:*" specs).
type EstimatorRanked = selection.EstimatorRanked

// MonitoredAvailabilityStrategy ranks candidates by monitored uptime
// over a window (the "monitored-availability[:W]" spec).
type MonitoredAvailabilityStrategy = selection.MonitoredAvailability

// ParseStrategy resolves a strategy spec string ("age:L=2160",
// "estimator:pareto", "monitored-availability:720", ...) with the
// paper's 90-day default horizon. See StrategyNames for the registry.
func ParseStrategy(spec string) (Policy, error) { return selection.Parse(spec) }

// RegisterStrategy adds a strategy spec to the registry, making it
// resolvable by ParseStrategy, the campaigns and the p2psim -strategy
// flag.
func RegisterStrategy(name string, b StrategyBuilder) { selection.Register(name, b) }

// StrategyNames lists the registered strategy spec names.
func StrategyNames() []string { return selection.Names() }

// Strategy decides partnerships and ranks candidates from a flat
// PeerInfo.
//
// Deprecated: implement Policy (see selection.Adapt for lifting legacy
// implementations); SimConfig still accepts Strategy values.
type Strategy = selection.Strategy

// PeerInfo describes a peer to a legacy Strategy.
//
// Deprecated: new code consumes View.
type PeerInfo = selection.PeerInfo

// AdaptStrategy lifts a legacy Strategy into a Policy.
func AdaptStrategy(s Strategy) Policy { return selection.Adapt(s) }

// AgeBasedStrategy is the paper's acceptance rule with horizon L (in
// rounds) on the legacy surface.
//
// Deprecated: use ParseStrategy("age:L=...") for the Policy surface.
func AgeBasedStrategy(horizon int64) Strategy { return selection.AgeBased{L: horizon} }

// StrategyByName resolves a strategy spec name onto the legacy Strategy
// surface; horizon is the default for specs that take one.
//
// Deprecated: use ParseStrategy.
func StrategyByName(name string, horizon int64) (Strategy, error) {
	return selection.ByName(name, horizon)
}

// AcceptanceFunction evaluates the paper's f(p1, p2) for acceptor age
// s1, requester age s2 and horizon L, all in rounds.
func AcceptanceFunction(s1, s2, l int64) float64 {
	return selection.AcceptanceFunction(s1, s2, l)
}

// ---------------------------------------------------------------------------
// Live backup system

// Node is a live backup peer (owner and host roles).
type Node = node.Node

// NodeConfig assembles a Node.
type NodeConfig = node.Config

// Directory is the membership/age view nodes select partners from.
type Directory = node.Directory

// NewDirectory returns an empty directory.
func NewDirectory() *Directory { return node.NewDirectory() }

// NewNode starts a backup peer.
func NewNode(cfg NodeConfig) (*Node, error) { return node.New(cfg) }

// RecoverFromNetwork rebuilds an owner's archives from the network
// given only its identity and peers to ask (total-local-loss restore).
func RecoverFromNetwork(name string, id *backup.Identity, t p2pnet.Transport, askPeers []string) ([][]backup.FileEntry, error) {
	return node.RecoverFromNetwork(name, id, t, askPeers)
}

// FileEntry is one file in an archive.
type FileEntry = backup.FileEntry

// Identity is an owner key pair.
type Identity = backup.Identity

// NewIdentity generates an owner key pair.
func NewIdentity() (*Identity, error) { return backup.NewIdentity() }

// ArchiveParams is the erasure shape of an archive.
type ArchiveParams = backup.Params

// DefaultArchiveParams returns the paper's 128+128 shape.
func DefaultArchiveParams() ArchiveParams { return backup.DefaultParams() }

// CollectDir captures a directory tree into archive entries.
func CollectDir(root string) ([]FileEntry, error) { return backup.CollectDir(root) }

// WriteDir materialises restored entries under root.
func WriteDir(root string, entries []FileEntry) error { return backup.WriteDir(root, entries) }

// InMemTransport is an in-process transport with fault injection.
type InMemTransport = p2pnet.InMemTransport

// NewInMemTransport returns an in-process message fabric.
func NewInMemTransport(seed uint64) *InMemTransport { return p2pnet.NewInMemTransport(seed) }

// TCPTransport carries the protocol over real sockets.
type TCPTransport = p2pnet.TCPTransport

// NewTCPTransport returns a TCP transport with default timeouts.
func NewTCPTransport() *TCPTransport { return p2pnet.NewTCPTransport() }

// MemStore is an in-memory block store.
func NewMemStore(quotaBytes int64) storage.Store { return storage.NewMemStore(quotaBytes) }

// OpenDiskStore opens an on-disk content-addressed block store.
func OpenDiskStore(dir string, quotaBytes int64) (storage.Store, error) {
	return storage.OpenDiskStore(dir, quotaBytes)
}

// ---------------------------------------------------------------------------
// Cost model (section 2.2.4)

// RepairCostEstimate returns the transfer time of a repair replacing d
// blocks of a paper-shaped archive on the paper's reference DSL link.
func RepairCostEstimate(d int) (costmodel.RepairCost, error) {
	return costmodel.EstimateRepair(costmodel.DSL2009(), costmodel.PaperCode(), d)
}
