package monitor

import (
	"errors"
	"math"
	"testing"

	"p2pbackup/internal/rng"
)

func TestBitHistoryBasics(t *testing.T) {
	h := NewBitHistory(8)
	if h.Window() != 8 {
		t.Fatalf("Window = %d", h.Window())
	}
	if _, ok := h.ObservedSince(); ok {
		t.Fatal("fresh history must have no observations")
	}
	if h.Uptime(5) != 0 || h.FullWindowUptime() != 0 {
		t.Fatal("empty history uptime must be 0")
	}
	// Record: online for 3, offline for 1.
	for r := int64(10); r < 13; r++ {
		if err := h.Record(r, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Record(13, false); err != nil {
		t.Fatal(err)
	}
	if since, ok := h.ObservedSince(); !ok || since != 10 {
		t.Fatalf("ObservedSince = %d, %v", since, ok)
	}
	if h.Recorded() != 4 {
		t.Fatalf("Recorded = %d", h.Recorded())
	}
	if got := h.Uptime(4); got != 0.75 {
		t.Fatalf("Uptime(4) = %v, want 0.75", got)
	}
	if got := h.Uptime(1); got != 0 {
		t.Fatalf("Uptime(1) = %v, want 0 (last round offline)", got)
	}
	if on, known := h.OnlineAt(11); !known || !on {
		t.Fatal("OnlineAt(11) wrong")
	}
	if on, known := h.OnlineAt(13); !known || on {
		t.Fatal("OnlineAt(13) wrong")
	}
	if _, known := h.OnlineAt(9); known {
		t.Fatal("round before start must be unknown")
	}
	if _, known := h.OnlineAt(14); known {
		t.Fatal("future round must be unknown")
	}
}

func TestBitHistoryOutOfOrder(t *testing.T) {
	h := NewBitHistory(4)
	if err := h.Record(5, true); err != nil {
		t.Fatal(err)
	}
	if err := h.Record(7, true); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("gap accepted: %v", err)
	}
	if err := h.Record(5, true); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("replay accepted: %v", err)
	}
}

func TestBitHistoryWrapAround(t *testing.T) {
	h := NewBitHistory(10)
	// 30 rounds: online on even rounds.
	for r := int64(0); r < 30; r++ {
		if err := h.Record(r, r%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if h.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want window", h.Recorded())
	}
	if got := h.FullWindowUptime(); got != 0.5 {
		t.Fatalf("FullWindowUptime = %v, want 0.5", got)
	}
	if got := h.Uptime(10); got != 0.5 {
		t.Fatalf("Uptime(10) = %v, want 0.5", got)
	}
	// Old rounds are forgotten.
	if _, known := h.OnlineAt(5); known {
		t.Fatal("round outside window must be unknown")
	}
	if on, known := h.OnlineAt(28); !known || !on {
		t.Fatal("recent even round must be online")
	}
}

func TestBitHistoryPartialWindowPopcount(t *testing.T) {
	h := NewBitHistory(100)
	for r := int64(0); r < 7; r++ {
		_ = h.Record(r, r < 5)
	}
	want := 5.0 / 7
	if got := h.FullWindowUptime(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("partial FullWindowUptime = %v, want %v", got, want)
	}
}

func TestNewHistoryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBitHistory(0) },
		func() { NewIntervalHistory(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid window must panic")
				}
			}()
			f()
		}()
	}
}

func TestIntervalHistoryBasics(t *testing.T) {
	h := NewIntervalHistory(100)
	if h.Uptime(50, 10) != 0 {
		t.Fatal("empty history uptime must be 0")
	}
	// Online [0, 10), offline [10, 30), online [30, ...).
	if err := h.RecordTransition(0, true); err != nil {
		t.Fatal(err)
	}
	if err := h.RecordTransition(10, false); err != nil {
		t.Fatal(err)
	}
	if err := h.RecordTransition(30, true); err != nil {
		t.Fatal(err)
	}
	if since, ok := h.ObservedSince(); !ok || since != 0 {
		t.Fatalf("ObservedSince = %d, %v", since, ok)
	}
	// Over [0, 40): online 10 + 10 = 20 of 40.
	if got := h.Uptime(40, 40); got != 0.5 {
		t.Fatalf("Uptime(40, 40) = %v, want 0.5", got)
	}
	// Over [30, 40): fully online.
	if got := h.Uptime(40, 10); got != 1 {
		t.Fatalf("Uptime(40, 10) = %v, want 1", got)
	}
	// Over [15, 25): fully offline.
	if got := h.Uptime(25, 10); got != 0 {
		t.Fatalf("Uptime(25, 10) = %v, want 0", got)
	}
	if on, known := h.OnlineAt(5); !known || !on {
		t.Fatal("OnlineAt(5) wrong")
	}
	if on, known := h.OnlineAt(15); !known || on {
		t.Fatal("OnlineAt(15) wrong")
	}
	if _, known := h.OnlineAt(-1); known {
		t.Fatal("pre-history round must be unknown")
	}
}

func TestIntervalHistoryRedundantAndSameRound(t *testing.T) {
	h := NewIntervalHistory(100)
	_ = h.RecordTransition(0, true)
	if err := h.RecordTransition(5, true); err != nil {
		t.Fatal("redundant transition must be ignored, not fail")
	}
	if h.Transitions() != 1 {
		t.Fatalf("Transitions = %d, want 1", h.Transitions())
	}
	// Same-round flip replaces.
	_ = h.RecordTransition(10, false)
	_ = h.RecordTransition(10, true)
	if h.Transitions() != 2 {
		t.Fatalf("Transitions = %d, want 2 after same-round replace", h.Transitions())
	}
	if on, _ := h.OnlineAt(10); !on {
		t.Fatal("same-round replacement must win")
	}
	if err := h.RecordTransition(3, false); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out of order accepted: %v", err)
	}
}

func TestIntervalHistoryClampsToObservedSpan(t *testing.T) {
	h := NewIntervalHistory(1000)
	_ = h.RecordTransition(100, true)
	// Query window [0, 110) clamps to [100, 110): fully online.
	if got := h.Uptime(110, 110); got != 1 {
		t.Fatalf("clamped uptime = %v, want 1", got)
	}
	// Query entirely before the first observation.
	if got := h.Uptime(100, 50); got != 0 {
		t.Fatalf("pre-observation uptime = %v, want 0", got)
	}
}

func TestIntervalHistoryPruning(t *testing.T) {
	h := NewIntervalHistory(50)
	for r := int64(0); r < 200; r += 10 {
		_ = h.RecordTransition(r, (r/10)%2 == 0)
	}
	// Recording prunes eagerly, so the stored count is already bounded
	// by the window; queries are read-only and change nothing.
	before := h.Transitions()
	_ = h.Uptime(200, 50)
	if h.Transitions() != before {
		t.Fatalf("query changed Transitions: %d -> %d", before, h.Transitions())
	}
	if h.Transitions() > 7 {
		t.Fatalf("pruning left %d transitions", h.Transitions())
	}
	// Uptime over the last 50 rounds: alternating 10-on/10-off, window
	// [150, 200): on [160,170) + [180,190) = 20 of 50... recompute:
	// state at r in [150,160) is (150/10)%2==0 -> false? 15%2=1 -> offline.
	// [160,170): 16%2=0 online; [170,180) offline; [180,190) online;
	// [190,200) offline. Online total 20/50.
	if got := h.Uptime(200, 50); got != 0.4 {
		t.Fatalf("post-prune uptime = %v, want 0.4", got)
	}
}

// TestHistoriesAgree drives both representations with the same random
// schedule and checks they report identical uptimes.
func TestHistoriesAgree(t *testing.T) {
	r := rng.New(42)
	const window = 64
	for trial := 0; trial < 20; trial++ {
		bit := NewBitHistory(window)
		iv := NewIntervalHistory(window)
		online := r.Bool(0.5)
		_ = iv.RecordTransition(0, online)
		total := int64(200 + r.Intn(200))
		for round := int64(0); round < total; round++ {
			if r.Bool(0.1) {
				online = !online
				_ = iv.RecordTransition(round, online)
			}
			if err := bit.Record(round, online); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range []int64{1, 5, 17, 40, window} {
			got := iv.Uptime(total, n)
			want := bit.Uptime(int(n))
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d window %d: interval=%v bit=%v", trial, n, got, want)
			}
		}
	}
}

func TestIntervalHistoryReset(t *testing.T) {
	h := NewIntervalHistory(100)
	if err := h.RecordTransition(10, true); err != nil {
		t.Fatal(err)
	}
	if err := h.RecordTransition(40, false); err != nil {
		t.Fatal(err)
	}
	if h.Transitions() == 0 {
		t.Fatal("no transitions recorded")
	}
	h.Reset()
	if h.Transitions() != 0 {
		t.Fatalf("transitions after Reset = %d", h.Transitions())
	}
	if _, ok := h.ObservedSince(); ok {
		t.Fatal("ObservedSince must report unobserved after Reset")
	}
	if got := h.Uptime(50, 50); got != 0 {
		t.Fatalf("Uptime after Reset = %v, want 0", got)
	}
	// The history is reusable, including from an earlier round than the
	// pre-reset tail (a replacement peer joins "in the past" of nothing).
	if err := h.RecordTransition(5, true); err != nil {
		t.Fatal(err)
	}
	if got := h.Uptime(25, 20); got != 1 {
		t.Fatalf("Uptime after reuse = %v, want 1", got)
	}
}

// TestIntervalHistoryEagerPruneBounded: recording alone must keep the
// transition list bounded by the window — a never-queried slot in a
// 50k-round run must not grow without limit (pruning used to happen
// only inside Uptime).
func TestIntervalHistoryEagerPruneBounded(t *testing.T) {
	const window = 48
	h := NewIntervalHistory(window)
	online := true
	for round := int64(0); round < 50_000; round++ {
		if err := h.RecordTransition(round, online); err != nil {
			t.Fatal(err)
		}
		online = !online
		// One transition per round: the in-window count can never
		// exceed window+1 (one defining the window-start state plus one
		// per round inside it).
		if n := h.Transitions(); n > window+1 {
			t.Fatalf("round %d: %d transitions stored, want <= %d", round, n, window+1)
		}
	}
	if n := h.Transitions(); n > window+1 {
		t.Fatalf("final transition count %d, want <= %d", n, window+1)
	}
}

// TestIntervalHistoryOnlineAtBinarySearch pins OnlineAt behaviour on a
// known schedule, including the unknown cases the search must preserve
// (before first observation, pruned-away past).
func TestIntervalHistoryOnlineAtBinarySearch(t *testing.T) {
	h := NewIntervalHistory(1000)
	sched := []struct {
		round  int64
		online bool
	}{{10, true}, {25, false}, {60, true}, {100, false}}
	for _, s := range sched {
		if err := h.RecordTransition(s.round, s.online); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		round  int64
		online bool
		known  bool
	}{
		{9, false, false}, // before first observation
		{10, true, true},
		{24, true, true},
		{25, false, true},
		{59, false, true},
		{60, true, true},
		{99, true, true},
		{100, false, true},
		{5000, false, true}, // state persists past the last transition
	}
	for _, c := range cases {
		online, known := h.OnlineAt(c.round)
		if online != c.online || known != c.known {
			t.Errorf("OnlineAt(%d) = (%v,%v), want (%v,%v)", c.round, online, known, c.online, c.known)
		}
	}
}

// TestHistoriesAgreeAfterReset drives both representations through a
// random schedule, resets them mid-schedule (the engine does this when
// a monitored identity is replaced), re-seeds them with a fresh
// schedule, and checks the windowed uptimes still agree: Reset must
// leave no residue in either representation.
func TestHistoriesAgreeAfterReset(t *testing.T) {
	r := rng.New(97)
	const window = 64
	for trial := 0; trial < 20; trial++ {
		bit := NewBitHistory(window)
		iv := NewIntervalHistory(window)
		online := r.Bool(0.5)
		_ = iv.RecordTransition(0, online)
		preTotal := int64(100 + r.Intn(200))
		for round := int64(0); round < preTotal; round++ {
			if r.Bool(0.15) {
				online = !online
				_ = iv.RecordTransition(round, online)
			}
			if err := bit.Record(round, online); err != nil {
				t.Fatal(err)
			}
		}

		// Mid-schedule replacement: both histories restart. The bit
		// history has no Reset; a fresh instance is its reset, which is
		// exactly what the equivalence must survive.
		iv.Reset()
		bit = NewBitHistory(window)

		start := preTotal + int64(r.Intn(50)) // the replacement joins later
		online = r.Bool(0.5)
		_ = iv.RecordTransition(start, online)
		total := start + int64(100+r.Intn(200))
		for round := start; round < total; round++ {
			if r.Bool(0.15) {
				online = !online
				_ = iv.RecordTransition(round, online)
			}
			if err := bit.Record(round, online); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range []int64{1, 7, 23, 40, window} {
			got := iv.Uptime(total, n)
			want := bit.Uptime(int(n))
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d window %d: interval=%v bit=%v", trial, n, got, want)
			}
		}
	}
}
